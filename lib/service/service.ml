module Json = Ckpt_json.Json
module Pool = Ckpt_parallel.Pool
module Stats = Ckpt_numerics.Stats
module Chaos = Ckpt_chaos.Chaos
module Telemetry = Ckpt_adaptive.Telemetry
module Rate_estimator = Ckpt_adaptive.Rate_estimator
module Cost_estimator = Ckpt_adaptive.Cost_estimator

(* The telemetry session: what observe accumulates and estimate/replan
   read.  Only the coordinator thread touches it (stateful ops are
   handled inline, never fanned out), so no lock is needed. *)
type session = {
  mutable rates : Rate_estimator.t;
  mutable costs : Cost_estimator.t;
}

type t = {
  pool : Pool.t option;
  planner : Planner.t;
  metrics : Metrics.t;
  chaos : Chaos.t option;
  (* Chaos indices for the service-owned sites, assigned in arrival
     order by the coordinator (line mangling and telemetry skew are
     decided before any fan-out, so they are worker-count independent). *)
  mutable line_seq : int;
  mutable event_seq : int;
  mutable session : session option;
  mutable live : bool;
  (* Durability hook: consulted with the raw (post-mangle) line before a
     stateful op mutates the session, so the server can write-ahead-log
     it.  [Error] refuses the op — state unchanged, client told why. *)
  mutable persist : (string -> (unit, Protocol.error) result) option;
  (* Extra top-level fields appended to the [stats] payload (the server
     reports persistence health through this). *)
  mutable stats_extra : (unit -> (string * Json.t) list) option;
}

let create ?(workers = 1) ?cache_capacity ?precision ?resilience ?chaos () =
  if workers < 0 then invalid_arg "Service.create: workers < 0";
  let metrics = Metrics.create () in
  let planner = Planner.create ?cache_capacity ?precision ?resilience ?chaos metrics in
  let pool = if workers = 0 then None else Some (Pool.create ?chaos ~workers ()) in
  { pool;
    planner;
    metrics;
    chaos;
    line_seq = 0;
    event_seq = 0;
    session = None;
    live = true;
    persist = None;
    stats_extra = None }

let workers t = match t.pool with None -> 0 | Some p -> Pool.workers p
let session_estimators t = Option.map (fun s -> (s.rates, s.costs)) t.session

let restore_session t ~rates ~costs =
  if Rate_estimator.levels rates <> Cost_estimator.levels costs then
    invalid_arg "Service.restore_session: estimator level counts differ";
  t.session <- Some { rates; costs }
let metrics t = t.metrics
let planner t = t.planner
let chaos t = t.chaos
let set_persist_hook t hook = t.persist <- hook
let set_stats_extra t extra = t.stats_extra <- extra

let stats_json t =
  let base = Metrics.to_json t.metrics in
  match t.stats_extra with
  | None -> base
  | Some extra -> (
      match base with
      | Json.Obj fields -> Json.Obj (fields @ extra ())
      | other -> other)

(* One parsed request, with the span of the flat query array it owns. *)
type job = {
  envelope : Protocol.envelope;
  line : string;  (** the raw line as parsed (after any chaos mangling) *)
  offset : int;  (** first slot in the flat query array *)
  span : int;  (** number of slots *)
}

let queries_of_request = function
  | Protocol.Plan q -> [| q |]
  | Protocol.Batch_plan { queries } -> queries
  | Protocol.Sweep { base; param; values } ->
      Array.map (Protocol.sweep_point base param) values
  | Protocol.Simulate_validate { query; _ } -> [| query |]
  (* Stateful adaptive ops never enter the flat query array: they are
     handled inline, in line order, so an observe is visible to a replan
     later in the same batch. *)
  | Protocol.Observe _ | Protocol.Estimate _ | Protocol.Replan _
  | Protocol.Calibrate _ | Protocol.Stats ->
      [||]

(* A degraded answer's plan came from the single-level chain, so its
   xs arity matches the collapsed problem, not the query's solution —
   simulate it against the problem it actually solves. *)
let simulation_problem ~(answer : Protocol.answer) query =
  match answer.Protocol.degraded with
  | None -> Protocol.simulation_problem query
  | Some _ ->
      Ckpt_model.Optimizer.single_level_problem query.Protocol.problem

let simulate ~problem ~plan ~replications ~seed =
  let config = Ckpt_sim.Run_config.of_plan ~problem ~plan () in
  let wall_clocks = Array.make replications 0. in
  let completed = ref 0 in
  for rep = 0 to replications - 1 do
    let outcome = Ckpt_sim.Engine.run ~seed:(seed + rep) config in
    wall_clocks.(rep) <- outcome.Ckpt_sim.Outcome.wall_clock;
    if outcome.Ckpt_sim.Outcome.completed then incr completed
  done;
  let simulated = Stats.summarize wall_clocks in
  { Protocol.predicted_wall_clock = plan.Ckpt_model.Optimizer.wall_clock;
    simulated;
    relative_error =
      Stats.relative_error ~expected:plan.Ckpt_model.Optimizer.wall_clock
        simulated.Stats.mean;
    completed_runs = !completed }

(* ---------------- stateful adaptive ops ---------------- *)

let infer_levels events =
  let explicit =
    List.find_map (function Telemetry.Run_start { levels; _ } -> Some levels | _ -> None) events
  in
  match explicit with
  | Some levels when levels > 0 -> Some levels
  | Some _ -> None
  | None ->
      let max_level =
        List.fold_left
          (fun acc -> function
            | Telemetry.Ckpt { level; _ }
            | Telemetry.Restart { level; _ }
            | Telemetry.Failure { level; _ } ->
                max acc level
            | _ -> acc)
          0 events
      in
      if max_level > 0 then Some max_level else None

(* Chaos telemetry site: skew event timestamps before they reach the
   estimators — which must tolerate the resulting out-of-order and
   shifted times (exposure clamps, no NaNs). *)
let skew_events t events =
  match t.chaos with
  | None -> events
  | Some chaos ->
      List.map
        (fun event ->
          let index = t.event_seq in
          t.event_seq <- index + 1;
          match Chaos.skew chaos ~index with
          | 0. -> event
          | by -> Telemetry.shift event ~by)
        events

let handle_observe t events =
  let events = skew_events t events in
  let session =
    match t.session with
    | Some s -> Ok s
    | None -> (
        match infer_levels events with
        | Some levels ->
            let s =
              { rates = Rate_estimator.create ~levels ();
                costs = Cost_estimator.create ~levels () }
            in
            t.session <- Some s;
            Ok s
        | None ->
            Error
              (Protocol.error_v "invalid-request"
                 "cannot infer the level count: include a start event or a leveled event"))
  in
  match session with
  | Error e -> Error e
  | Ok s -> (
      match
        (Rate_estimator.observe_all s.rates events, Cost_estimator.observe_all s.costs events)
      with
      | rates, costs ->
          s.rates <- rates;
          s.costs <- costs;
          Ok
            ( List.length events,
              Rate_estimator.total_count rates,
              Rate_estimator.exposure rates )
      | exception Invalid_argument m -> Error (Protocol.error_v "invalid-request" m))

let no_telemetry =
  Protocol.error_v "no-telemetry"
    "no exposure observed yet: send an \"observe\" request first"

let with_session t f =
  match t.session with
  | Some s when Rate_estimator.exposure s.rates > 0. -> f s
  | _ -> Error no_telemetry

let handle_estimate t ~baseline_scale ~coverage =
  with_session t (fun s ->
      let levels = Rate_estimator.levels s.rates in
      let rate level =
        let per_day = Rate_estimator.rate_per_day s.rates ~level ~baseline_scale in
        let lo, hi = Rate_estimator.confidence_per_day ~coverage s.rates ~level ~baseline_scale in
        Json.Obj
          [ ("level", Json.Number (float_of_int level));
            ("per_day", Json.Number per_day);
            ("ci_low", Json.Number lo);
            ("ci_high", Json.Number hi);
            ("failures", Json.Number (float_of_int (Rate_estimator.count s.rates ~level))) ]
      in
      let cost level =
        Json.Obj
          [ ("level", Json.Number (float_of_int level));
            ("ckpt_samples", Json.Number (float_of_int (Cost_estimator.ckpt_count s.costs ~level)));
            ("ckpt_mean", Json.Number (Cost_estimator.ckpt_mean s.costs ~level));
            ("restart_samples",
             Json.Number (float_of_int (Cost_estimator.restart_count s.costs ~level)));
            ("restart_mean", Json.Number (Cost_estimator.restart_mean s.costs ~level)) ]
      in
      let ix = List.init levels (fun i -> i + 1) in
      Ok
        (Json.Obj
           [ ("baseline_scale", Json.Number baseline_scale);
             ("coverage", Json.Number coverage);
             ("exposure_core_seconds", Json.Number (Rate_estimator.exposure s.rates));
             ("failures", Json.Number (float_of_int (Rate_estimator.total_count s.rates)));
             ("rates", Json.List (List.map rate ix));
             ("costs", Json.List (List.map cost ix)) ]))

let handle_replan t ~query ~prior_strength =
  with_session t (fun s ->
      Metrics.add_queries t.metrics 1;
      Planner.replan t.planner ~rates:s.rates ~costs:s.costs ~prior_strength query)

(* The calibrate op: raw SCR log lines -> total parse -> phase
   accounting -> session estimators -> replan, all inline on the
   coordinator (stateful, like observe).  The session is created from
   the query problem's hierarchy when absent; a level-count mismatch
   with an existing session is a request error, not a silent resize. *)
let handle_calibrate t ~query ~log ~prior_strength ~compare =
  let problem = query.Protocol.problem in
  let levels = Array.length problem.Ckpt_model.Optimizer.levels in
  let session =
    match t.session with
    | Some s when Rate_estimator.levels s.rates = levels -> Ok s
    | Some s ->
        Error
          (Protocol.error_v "invalid-request"
             (Printf.sprintf
                "calibrate problem has %d levels but the session tracks %d"
                levels (Rate_estimator.levels s.rates)))
    | None ->
        let s =
          { rates = Rate_estimator.create ~levels ();
            costs = Cost_estimator.create ~levels () }
        in
        t.session <- Some s;
        Ok s
  in
  match session with
  | Error e -> Error e
  | Ok s -> (
      let parsed = Ckpt_calibrate.Scr_log.parse log in
      let default_scale =
        problem.Ckpt_model.Optimizer.spec
          .Ckpt_failures.Failure_spec.baseline_scale
      in
      let accounted =
        Ckpt_calibrate.Account.run
          (Ckpt_calibrate.Account.config ~default_scale ~levels ())
          parsed.Ckpt_calibrate.Scr_log.records
      in
      let events = skew_events t accounted.Ckpt_calibrate.Account.events in
      match
        ( Rate_estimator.observe_all s.rates events,
          Cost_estimator.observe_all s.costs events )
      with
      | exception Invalid_argument m ->
          Error (Protocol.error_v "invalid-request" m)
      | rates, costs -> (
          s.rates <- rates;
          s.costs <- costs;
          if Rate_estimator.exposure rates <= 0. then
            Error
              (Protocol.error_v "no-telemetry"
                 (Printf.sprintf
                    "log yields no exposure (%d records parsed, %d skipped): \
                     nothing advances the clock"
                    (List.length parsed.Ckpt_calibrate.Scr_log.records)
                    (List.length parsed.Ckpt_calibrate.Scr_log.skips)))
          else begin
            Metrics.add_queries t.metrics 1;
            match
              Planner.replan t.planner ~rates ~costs ~prior_strength query
            with
            | Error e -> Error e
            | Ok (answer, fitted) ->
                let report =
                  Ckpt_calibrate.Fit.report ~prior_strength ~log:parsed
                    ~totals:accounted.Ckpt_calibrate.Account.totals
                    ~template:problem ~rates ~costs ()
                in
                let provenance = Ckpt_calibrate.Fit.report_to_json report in
                (* A degraded answer's plan has single-level arity; the
                   pinned re-evaluation inside the comparison needs the
                   fitted problem's arity, so the side-by-side is only
                   built on the healthy path (the response still carries
                   the degraded markers). *)
                let comparison =
                  if compare && answer.Protocol.degraded = None then
                    Some
                      (Ckpt_calibrate.Compare.to_json
                         (Ckpt_calibrate.Compare.run
                            ~ml_plan:answer.Protocol.plan fitted))
                  else None
                in
                Ok (answer, fitted, provenance, comparison)
          end))

(* Chaos line site: corrupt or truncate raw request lines before the
   parser sees them — the parse/validate boundary must answer every
   mangled line with a structured error, never an exception. *)
let mangle_lines t lines =
  match t.chaos with
  | None -> lines
  | Some chaos ->
      List.map
        (fun line ->
          let index = t.line_seq in
          t.line_seq <- index + 1;
          match Chaos.mangle_line chaos ~index line with
          | None -> line
          | Some mangled -> mangled)
        lines

(* The shared pipeline behind {handle_batch} and {handle_batch_lines}:
   parse/validate, flat solver fan-out, simulation fan-out.  Rendering
   is the caller's choice — JSON trees or streamed strings. *)
let run_batch t lines =
  if not t.live then invalid_arg "Service.handle_batch: service is shut down";
  let lines = mangle_lines t lines in
  (* Parse + validate every line, laying queries out flat. *)
  let offset = ref 0 in
  let jobs =
    List.map
      (fun line ->
        Metrics.incr_requests t.metrics;
        let envelope = Wire.parse_request line in
        let span =
          match envelope.Protocol.request with
          | Ok request -> Array.length (queries_of_request request)
          | Error _ -> 0
        in
        let job = { envelope; line; offset = !offset; span } in
        offset := !offset + span;
        job)
      lines
  in
  let queries = Array.make !offset None in
  List.iter
    (fun job ->
      match job.envelope.Protocol.request with
      | Error _ -> ()
      | Ok request ->
          Array.iteri
            (fun i q -> queries.(job.offset + i) <- Some q)
            (queries_of_request request))
    jobs;
  let queries = Array.map Option.get queries in
  let outcomes = Planner.solve_batch ?pool:t.pool t.planner queries in
  (* Second fan-out: the simulation legs of simulate-validate requests. *)
  let sim_inputs =
    List.filter_map
      (fun job ->
        match job.envelope.Protocol.request with
        | Ok (Protocol.Simulate_validate { query; replications; seed }) -> (
            match outcomes.(job.offset) with
            | Ok answer ->
                let problem = simulation_problem ~answer query in
                Some (job.offset, problem, answer.Protocol.plan, replications, seed)
            | Error _ -> None)
        | _ -> None)
      jobs
  in
  let sim_results =
    let run (slot, problem, plan, replications, seed) =
      let r =
        try Ok (simulate ~problem ~plan ~replications ~seed)
        with e ->
          Error
            (Protocol.error_v "simulate-failure"
               (match e with
               | Invalid_argument m | Failure m -> m
               | e -> Printexc.to_string e))
      in
      (slot, r)
    in
    let inputs = Array.of_list sim_inputs in
    match t.pool with
    | Some pool when Array.length inputs > 1 -> Pool.map pool ~f:run inputs
    | _ -> Array.map run inputs
  in
  let sim_by_slot = Hashtbl.create 8 in
  Array.iter (fun (slot, r) -> Hashtbl.replace sim_by_slot slot r) sim_results;
  (jobs, outcomes, sim_by_slot)

(* Stateful ops go through the durability gate first: the line must be
   on disk (per the WAL's policy) before the session mutates, or the op
   is refused outright and the state left untouched. *)
let persist_gate t job k =
  match t.persist with
  | None -> k ()
  | Some hook -> (
      match hook job.line with
      | Ok () -> k ()
      | Error e ->
          Metrics.incr_errors t.metrics;
          Protocol.error_response ?id:job.envelope.Protocol.id e)

(* Reassemble one response per line, in order. *)
let respond t ~outcomes ~sim_by_slot job =
  let id = job.envelope.Protocol.id in
  match job.envelope.Protocol.request with
  | Error e ->
      Metrics.incr_errors t.metrics;
      Protocol.error_response ?id e
  | Ok request -> (
      match request with
      | Protocol.Stats -> Protocol.stats_response ?id (stats_json t)
      | Protocol.Observe { events } ->
          persist_gate t job @@ fun () -> (
          match handle_observe t events with
          | Ok (events, failures, exposure) ->
              Protocol.observe_response ?id ~events ~failures ~exposure ()
          | Error e ->
              Metrics.incr_errors t.metrics;
              Protocol.error_response ?id e)
      | Protocol.Estimate { baseline_scale; coverage } -> (
          match handle_estimate t ~baseline_scale ~coverage with
          | Ok payload -> Protocol.estimate_response ?id payload
          | Error e ->
              Metrics.incr_errors t.metrics;
              Protocol.error_response ?id e)
      | Protocol.Replan { query; prior_strength } ->
          persist_gate t job @@ fun () -> (
          match handle_replan t ~query ~prior_strength with
          | Ok (answer, fitted) ->
              Protocol.replan_response ?id
                ?degraded:answer.Protocol.degraded
                ~plan:answer.Protocol.plan ~fitted ()
          | Error e ->
              Metrics.incr_errors t.metrics;
              Protocol.error_response ?id e)
      | Protocol.Calibrate { query; log; prior_strength; compare } ->
          persist_gate t job @@ fun () -> (
          match handle_calibrate t ~query ~log ~prior_strength ~compare with
          | Ok (answer, fitted, provenance, comparison) ->
              Protocol.calibrate_response ?id
                ?degraded:answer.Protocol.degraded ?comparison
                ~plan:answer.Protocol.plan ~fitted ~provenance ()
          | Error e ->
              Metrics.incr_errors t.metrics;
              Protocol.error_response ?id e)
      | Protocol.Plan _ -> (
          match outcomes.(job.offset) with
          | Ok answer -> Protocol.plan_response ?id answer
          | Error e ->
              Metrics.incr_errors t.metrics;
              Protocol.error_response ?id e)
      | Protocol.Batch_plan { queries } ->
          let points =
            Array.init (Array.length queries) (fun i ->
                outcomes.(job.offset + i))
          in
          Protocol.batch_plan_response ?id points
      | Protocol.Sweep { param; values; _ } ->
          let points =
            Array.mapi (fun i v -> (v, outcomes.(job.offset + i))) values
          in
          Protocol.sweep_response ?id ~param points
      | Protocol.Simulate_validate _ -> (
          match outcomes.(job.offset) with
          | Error e ->
              Metrics.incr_errors t.metrics;
              Protocol.error_response ?id e
          | Ok answer -> (
              match Hashtbl.find_opt sim_by_slot job.offset with
              | Some (Ok v) ->
                  Protocol.validation_response ?id
                    ?degraded:answer.Protocol.degraded
                    ~cached:answer.Protocol.cached ~plan:answer.Protocol.plan v
              | Some (Error e) ->
                  Metrics.incr_errors t.metrics;
                  Protocol.error_response ?id e
              | None -> assert false)))

let handle_batch t lines =
  let t0 = Metrics.now_ms () in
  let jobs, outcomes, sim_by_slot = run_batch t lines in
  let responses = List.map (respond t ~outcomes ~sim_by_slot) jobs in
  Metrics.record_batch_ms t.metrics (Metrics.now_ms () -. t0);
  responses

(* String-rendering variant: the hot solver-bound responses are streamed
   through {!Wire} into one reusable buffer — no [Json.t] tree is ever
   built for them — and everything else goes through {!respond} +
   [Json.to_string].  Output strings are byte-identical to
   [List.map Json.to_string (handle_batch t lines)]. *)
let handle_batch_lines t lines =
  let t0 = Metrics.now_ms () in
  let jobs, outcomes, sim_by_slot = run_batch t lines in
  let buf = Buffer.create 4096 in
  let finish () =
    let s = Buffer.contents buf in
    (* Don't let one huge sweep response pin its capacity forever. *)
    if Buffer.length buf > 1 lsl 20 then Buffer.reset buf else Buffer.clear buf;
    s
  in
  let render job =
    let id = job.envelope.Protocol.id in
    match job.envelope.Protocol.request with
    | Ok (Protocol.Plan _) when Result.is_ok outcomes.(job.offset) -> (
        match outcomes.(job.offset) with
        | Ok answer ->
            Wire.write_plan_response buf ?id answer;
            finish ()
        | Error _ -> assert false)
    | Ok (Protocol.Batch_plan { queries }) ->
        let points =
          Array.init (Array.length queries) (fun i -> outcomes.(job.offset + i))
        in
        Wire.write_batch_plan_response buf ?id points;
        finish ()
    | Ok (Protocol.Sweep { param; values; _ }) ->
        let points = Array.mapi (fun i v -> (v, outcomes.(job.offset + i))) values in
        Wire.write_sweep_response buf ?id ~param points;
        finish ()
    | _ -> Json.to_string (respond t ~outcomes ~sim_by_slot job)
  in
  let responses = List.map render jobs in
  Metrics.record_batch_ms t.metrics (Metrics.now_ms () -. t0);
  responses

let handle_line t line =
  match handle_batch t [ line ] with [ r ] -> r | _ -> assert false

let handle_line_string t line =
  match handle_batch_lines t [ line ] with [ r ] -> r | _ -> assert false

let shutdown t =
  if t.live then begin
    t.live <- false;
    Option.iter Pool.shutdown t.pool
  end
