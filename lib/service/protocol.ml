open Ckpt_model
module Json = Ckpt_json.Json
module Stats = Ckpt_numerics.Stats

type error = { code : string; message : string; attempts : int }

let error_v ?(attempts = 0) code message = { code; message; attempts }
let err code fmt = Printf.ksprintf (fun message -> Error (error_v code message)) fmt

type solution = Ml_opt | Ml_ori | Sl_opt | Sl_ori

type query = {
  problem : Optimizer.problem;
  solution : solution;
  fixed_n : float option;
  delta : float;
}

type sweep_param = Scale | Te | Alloc

type request =
  | Plan of query
  | Batch_plan of { queries : query array }
  | Sweep of { base : query; param : sweep_param; values : float array }
  | Simulate_validate of { query : query; replications : int; seed : int }
  | Observe of { events : Ckpt_adaptive.Telemetry.event list }
  | Estimate of { baseline_scale : float; coverage : float }
  | Replan of { query : query; prior_strength : float }
  | Calibrate of {
      query : query;
      log : string list;
      prior_strength : float;
      compare : bool;
    }
  | Stats

type envelope = { id : Json.t option; request : (request, error) result }

let solution_of_string = function
  | "ml-opt" -> Ok Ml_opt
  | "ml-ori" -> Ok Ml_ori
  | "sl-opt" -> Ok Sl_opt
  | "sl-ori" -> Ok Sl_ori
  | s -> err "invalid-request" "unknown solution %S (want ml-opt|ml-ori|sl-opt|sl-ori)" s

let solution_to_string = function
  | Ml_opt -> "ml-opt"
  | Ml_ori -> "ml-ori"
  | Sl_opt -> "sl-opt"
  | Sl_ori -> "sl-ori"

let sweep_param_of_string = function
  | "scale" | "fixed_n" -> Ok Scale
  | "te" -> Ok Te
  | "alloc" -> Ok Alloc
  | s -> err "invalid-request" "unknown sweep param %S (want scale|te|alloc)" s

let sweep_param_to_string = function Scale -> "scale" | Te -> "te" | Alloc -> "alloc"

let ( let* ) = Result.bind

let default_delta = 1e-9

let parse_query json =
  let* problem =
    match Json.member "problem" json with
    | None -> err "invalid-request" "missing field \"problem\""
    | Some pj -> (
        (* The codec can raise on degenerate shapes (e.g. an empty
           hierarchy trips an assertion in Failure_spec.v); the service
           boundary turns every such case into a structured error. *)
        match Codec.problem_of_json pj with
        | Ok p -> Ok p
        | Error m -> Error (error_v "invalid-problem" m)
        | exception e -> Error (error_v "invalid-problem" (Printexc.to_string e)))
  in
  (* The satellite contract: every request is validated here, before any
     query can reach a worker domain. *)
  let* () =
    match Optimizer.check_problem problem with
    | () -> Ok ()
    | exception Invalid_argument m -> Error (error_v "invalid-problem" m)
  in
  let* solution =
    match Json.string_field "solution" json with
    | None -> Ok Ml_opt
    | Some s -> solution_of_string s
  in
  let fixed_n = Json.float_field "fixed_n" json in
  let* () =
    match fixed_n with
    | Some n when n <= 0. -> err "invalid-request" "fixed_n must be positive"
    | _ -> Ok ()
  in
  let delta = Option.value (Json.float_field "delta" json) ~default:default_delta in
  let* () =
    if delta > 0. then Ok () else err "invalid-request" "delta must be positive"
  in
  Ok { problem; solution; fixed_n; delta }

(* A batch-plan is K plan queries sharing the envelope's solution /
   fixed_n / delta: the shape batch clients (and the SoA batch solver
   behind the planner) are built for.  Parsed like K independent plan
   requests — each problem is decoded and validated before anything can
   reach a worker — but rejected atomically: one bad problem fails the
   whole request, exactly as one bad value fails a sweep. *)
let parse_batch_plan json =
  let* solution =
    match Json.string_field "solution" json with
    | None -> Ok Ml_opt
    | Some s -> solution_of_string s
  in
  let fixed_n = Json.float_field "fixed_n" json in
  let* () =
    match fixed_n with
    | Some n when n <= 0. -> err "invalid-request" "fixed_n must be positive"
    | _ -> Ok ()
  in
  let delta = Option.value (Json.float_field "delta" json) ~default:default_delta in
  let* () =
    if delta > 0. then Ok () else err "invalid-request" "delta must be positive"
  in
  let* items =
    match Json.list_field "problems" json with
    | None ->
        err "invalid-request" "missing field \"problems\" (an array of problem objects)"
    | Some [] -> err "invalid-request" "empty \"problems\""
    | Some items -> Ok items
  in
  let rec decode acc i = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | item :: rest -> (
        match Codec.problem_of_json item with
        | Ok p -> (
            match Optimizer.check_problem p with
            | () ->
                decode ({ problem = p; solution; fixed_n; delta } :: acc) (i + 1) rest
            | exception Invalid_argument m -> err "invalid-problem" "problems[%d]: %s" i m)
        | Error m -> err "invalid-problem" "problems[%d]: %s" i m
        | exception e -> err "invalid-problem" "problems[%d]: %s" i (Printexc.to_string e))
  in
  let* queries = decode [] 0 items in
  Ok (Batch_plan { queries })

let parse_sweep json =
  let* base = parse_query json in
  let* param =
    match Json.string_field "param" json with
    | None -> err "invalid-request" "missing field \"param\""
    | Some s -> sweep_param_of_string s
  in
  let* values =
    match Option.bind (Json.member "values" json) Json.of_float_array with
    | None -> err "invalid-request" "missing or non-numeric field \"values\""
    | Some [||] -> err "invalid-request" "empty sweep \"values\""
    | Some vs -> Ok vs
  in
  let* () =
    if Array.for_all (fun v -> v > 0. && Float.is_finite v) values then Ok ()
    else err "invalid-request" "sweep values must be positive and finite"
  in
  Ok (Sweep { base; param; values })

let parse_validate json =
  let* query = parse_query json in
  let replications =
    Option.value (Option.bind (Json.member "replications" json) Json.to_int) ~default:10
  in
  let* () =
    if replications >= 1 && replications <= 10_000 then Ok ()
    else err "invalid-request" "replications must be in [1, 10000]"
  in
  let seed = Option.value (Option.bind (Json.member "seed" json) Json.to_int) ~default:1 in
  Ok (Simulate_validate { query; replications; seed })

let parse_observe json =
  match Json.member "events" json with
  | None -> err "invalid-request" "missing field \"events\""
  | Some (Json.List items) ->
      let rec decode acc i = function
        | [] -> Ok (Observe { events = List.rev acc })
        | item :: rest -> (
            match Ckpt_adaptive.Telemetry.of_json item with
            | Ok event -> decode (event :: acc) (i + 1) rest
            | Error m -> err "invalid-request" "events[%d]: %s" i m)
      in
      decode [] 0 items
  | Some _ -> err "invalid-request" "field \"events\" must be an array"

(* Failure_spec's default N_b (the paper's N_star). *)
let default_baseline_scale =
  (Ckpt_failures.Failure_spec.v [| 0. |]).Ckpt_failures.Failure_spec.baseline_scale

let parse_estimate json =
  let baseline_scale =
    Option.value (Json.float_field "baseline_scale" json) ~default:default_baseline_scale
  in
  let* () =
    if baseline_scale > 0. then Ok ()
    else err "invalid-request" "baseline_scale must be positive"
  in
  let coverage = Option.value (Json.float_field "coverage" json) ~default:0.95 in
  let* () =
    if coverage > 0. && coverage < 1. then Ok ()
    else err "invalid-request" "coverage must be in (0, 1)"
  in
  Ok (Estimate { baseline_scale; coverage })

let parse_replan json =
  let* query = parse_query json in
  let prior_strength = Option.value (Json.float_field "prior_strength" json) ~default:0. in
  let* () =
    if prior_strength >= 0. then Ok ()
    else err "invalid-request" "prior_strength must be non-negative"
  in
  Ok (Replan { query; prior_strength })

let parse_calibrate json =
  let* query = parse_query json in
  let* log =
    match Json.member "log" json with
    | None -> err "invalid-request" "missing field \"log\""
    | Some (Json.List items) ->
        let rec decode acc i = function
          | [] -> Ok (List.rev acc)
          | Json.String s :: rest -> decode (s :: acc) (i + 1) rest
          | _ :: _ -> err "invalid-request" "log[%d] must be a string" i
        in
        decode [] 0 items
    | Some _ -> err "invalid-request" "field \"log\" must be an array of strings"
  in
  let prior_strength = Option.value (Json.float_field "prior_strength" json) ~default:0. in
  let* () =
    if prior_strength >= 0. then Ok ()
    else err "invalid-request" "prior_strength must be non-negative"
  in
  let* compare =
    match Json.member "compare" json with
    | None -> Ok false
    | Some v -> (
        match Json.to_bool v with
        | Some b -> Ok b
        | None -> err "invalid-request" "field \"compare\" must be a boolean")
  in
  Ok (Calibrate { query; log; prior_strength; compare })

let parse_request line =
  match Json.parse_result line with
  | Error m -> { id = None; request = Error (error_v "parse" m) }
  | Ok json ->
      let id = Json.member "id" json in
      let request =
        match Json.string_field "op" json with
        | None -> err "invalid-request" "missing field \"op\""
        | Some "plan" ->
            let* q = parse_query json in
            Ok (Plan q)
        | Some "batch-plan" -> parse_batch_plan json
        | Some "sweep" -> parse_sweep json
        | Some "simulate-validate" -> parse_validate json
        | Some "observe" -> parse_observe json
        | Some "estimate" -> parse_estimate json
        | Some "replan" -> parse_replan json
        | Some "calibrate" -> parse_calibrate json
        | Some "stats" -> Ok Stats
        | Some op -> err "invalid-request" "unknown op %S" op
      in
      { id; request }

let sweep_point base param v =
  match param with
  | Scale -> { base with fixed_n = Some v }
  | Te -> { base with problem = { base.problem with Optimizer.te = v } }
  | Alloc -> { base with problem = { base.problem with Optimizer.alloc = v } }

let simulation_problem q =
  match q.solution with
  | Ml_opt | Ml_ori -> q.problem
  | Sl_opt | Sl_ori -> Optimizer.single_level_problem q.problem

(* --------------- answers --------------- *)

type degraded = { fallback : solution; reason : error }

type answer = {
  plan : Optimizer.plan;
  cached : bool;
  degraded : degraded option;
}

(* --------------- responses --------------- *)

let with_id id fields = match id with None -> fields | Some id -> ("id", id) :: fields

let error_json { code; message; attempts } =
  (* [attempts] appears only when retries actually happened, so error
     payloads from paths that never retry are byte-identical to the
     pre-taxonomy wire format. *)
  Json.Obj
    (("code", Json.String code)
    :: ("message", Json.String message)
    ::
    (if attempts > 0 then [ ("attempts", Json.Number (float_of_int attempts)) ]
     else []))

let error_response ?id e =
  Json.Obj (with_id id [ ("ok", Json.Bool false); ("error", error_json e) ])

(* Degraded markers are appended after the payload and omitted entirely
   on the healthy path — chaos off means byte-identical responses. *)
let degraded_fields = function
  | None -> []
  | Some { fallback; reason } ->
      [ ("degraded", Json.Bool true);
        ("fallback", Json.String (solution_to_string fallback));
        ("degraded_reason", error_json reason) ]

let plan_response ?id answer =
  Json.Obj
    (with_id id
       ([ ("ok", Json.Bool true); ("op", Json.String "plan");
          ("cached", Json.Bool answer.cached);
          ("plan", Codec.plan_to_json answer.plan) ]
       @ degraded_fields answer.degraded))

let batch_plan_response ?id points =
  let point outcome =
    let fields =
      match outcome with
      | Ok answer ->
          [ ("cached", Json.Bool answer.cached);
            ("plan", Codec.plan_to_json answer.plan) ]
          @ degraded_fields answer.degraded
      | Error e -> [ ("error", error_json e) ]
    in
    Json.Obj fields
  in
  let solved =
    Array.fold_left (fun n o -> if Result.is_ok o then n + 1 else n) 0 points
  in
  Json.Obj
    (with_id id
       [ ("ok", Json.Bool true); ("op", Json.String "batch-plan");
         ("count", Json.Number (float_of_int (Array.length points)));
         ("solved", Json.Number (float_of_int solved));
         ("results", Json.List (Array.to_list (Array.map point points))) ])

let sweep_response ?id ~param points =
  let point (v, outcome) =
    let fields =
      match outcome with
      | Ok answer ->
          [ ("value", Json.Number v); ("cached", Json.Bool answer.cached);
            ("plan", Codec.plan_to_json answer.plan) ]
          @ degraded_fields answer.degraded
      | Error e -> [ ("value", Json.Number v); ("error", error_json e) ]
    in
    Json.Obj fields
  in
  let solved =
    Array.fold_left (fun n (_, o) -> if Result.is_ok o then n + 1 else n) 0 points
  in
  Json.Obj
    (with_id id
       [ ("ok", Json.Bool true); ("op", Json.String "sweep");
         ("param", Json.String (sweep_param_to_string param));
         ("count", Json.Number (float_of_int (Array.length points)));
         ("solved", Json.Number (float_of_int solved));
         ("results", Json.List (Array.to_list (Array.map point points))) ])

type validation = {
  predicted_wall_clock : float;
  simulated : Stats.summary;
  relative_error : float;
  completed_runs : int;
}

let validation_response ?id ?degraded ~cached ~plan v =
  Json.Obj
    (with_id id
       ([ ("ok", Json.Bool true); ("op", Json.String "simulate-validate");
          ("cached", Json.Bool cached);
          ("predicted_wall_clock", Json.Number v.predicted_wall_clock);
          ("simulated",
           Json.Obj
             [ ("replications", Json.Number (float_of_int v.simulated.Stats.n));
               ("completed", Json.Number (float_of_int v.completed_runs));
               ("mean", Json.Number v.simulated.Stats.mean);
               ("std", Json.Number v.simulated.Stats.std);
               ("min", Json.Number v.simulated.Stats.min);
               ("max", Json.Number v.simulated.Stats.max) ]);
          ("relative_error", Json.Number v.relative_error);
          ("plan", Codec.plan_to_json plan) ]
       @ degraded_fields degraded))

let observe_response ?id ~events ~failures ~exposure () =
  Json.Obj
    (with_id id
       [ ("ok", Json.Bool true); ("op", Json.String "observe");
         ("events", Json.Number (float_of_int events));
         ("failures", Json.Number (float_of_int failures));
         ("exposure_core_seconds", Json.Number exposure) ])

let estimate_response ?id payload =
  Json.Obj
    (with_id id
       [ ("ok", Json.Bool true); ("op", Json.String "estimate"); ("estimate", payload) ])

let replan_response ?id ?degraded ~plan ~fitted () =
  Json.Obj
    (with_id id
       ([ ("ok", Json.Bool true); ("op", Json.String "replan");
          ("plan", Codec.plan_to_json plan);
          ("fitted_problem", Codec.problem_to_json fitted) ]
       @ degraded_fields degraded))

let calibrate_response ?id ?degraded ?comparison ~plan ~fitted ~provenance () =
  Json.Obj
    (with_id id
       ([ ("ok", Json.Bool true); ("op", Json.String "calibrate");
          ("plan", Codec.plan_to_json plan);
          ("fitted_problem", Codec.problem_to_json fitted);
          ("provenance", provenance) ]
       @ (match comparison with None -> [] | Some c -> [ ("comparison", c) ])
       @ degraded_fields degraded))

let stats_response ?id payload =
  Json.Obj
    (with_id id [ ("ok", Json.Bool true); ("op", Json.String "stats"); ("stats", payload) ])

let response_ok json = Json.member "ok" json = Some (Json.Bool true)

let response_error json =
  match Json.member "error" json with
  | None -> None
  | Some e -> (
      match (Json.string_field "code" e, Json.string_field "message" e) with
      | Some code, Some message ->
          let attempts =
            Option.value ~default:0 (Option.bind (Json.member "attempts" e) Json.to_int)
          in
          Some { code; message; attempts }
      | _ -> None)

let response_degraded json = Json.member "degraded" json = Some (Json.Bool true)
