(* Hashtbl for O(1) lookup + intrusive doubly-linked list for O(1)
   recency updates and eviction.  [head] is most recently used. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards head / MRU *)
  mutable next : 'a node option;  (* towards tail / LRU *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  cap : int;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru_cache.create: capacity < 1";
  { tbl = Hashtbl.create (2 * capacity); cap = capacity; head = None; tail = None; evicted = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let mem t k = Hashtbl.mem t.tbl k

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.tbl node.key;
      t.evicted <- t.evicted + 1

let add t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node
  | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.add t.tbl k node;
      push_front t node);
  if Hashtbl.length t.tbl > t.cap then evict_lru t

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((node.key, node.value) :: acc) node.next
  in
  walk [] t.head

let evictions t = t.evicted

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None
