(** A plan cache sharded N ways over {!Lru_cache}, one mutex per shard.

    The planner's cache was a single LRU touched only from the
    coordinating domain.  Sharding it by fingerprint prefix removes that
    restriction: each shard carries its own lock, so concurrent lookups
    of different keys contend only when their leading nibble collides —
    lookups from pool workers or several coordinators stay mostly
    lock-free of each other.  Recency is tracked per shard; with the
    uniform FNV-1a fingerprints the service uses as keys, per-shard LRU
    evicts within a hair of global LRU at a fraction of the
    synchronisation cost.

    Capacity is a global budget split evenly across shards (remainder to
    the first shards), so total capacity is exactly the requested
    figure. *)

type 'a t

val create : ?shards:int -> capacity:int -> unit -> 'a t
(** [shards] (default 8) must be a positive power of two, and
    [capacity >= shards] so no shard rounds down to zero.
    @raise Invalid_argument otherwise. *)

val shards : 'a t -> int
val capacity : 'a t -> int
(** Sum of shard capacities — equals the [capacity] given to {!create}. *)

val length : 'a t -> int
(** Total bindings across shards. *)

val find : 'a t -> string -> 'a option
(** [find t k] returns the cached value and marks [k] most recently used
    within its shard. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency. *)

val add : 'a t -> string -> 'a -> unit
(** [add t k v] binds [k] in its shard, evicting that shard's least
    recently used binding on overflow. *)

val to_list : 'a t -> (string * 'a) list
(** All bindings, shard by shard (most recently used first within each
    shard); recency untouched.  The deterministic dump the snapshot
    layer persists: re-{!add}ing a shard's bindings in reverse order
    into a fresh cache reproduces its recency order, so a warm restart
    evicts the same keys the original would have. *)

val evictions : 'a t -> int
(** Total evictions across shards since [create]. *)

val clear : 'a t -> unit
