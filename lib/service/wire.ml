(* Zero-tree wire fastpath for the hot protocol shapes.

   Decode: a recursive-descent scanner over the raw line that builds
   [Protocol.query] values directly — no [Json.t] tree — for the three
   solver-bound ops (plan, batch-plan, sweep).  The scanner accepts a
   strict subset of what the tree parser accepts: any deviation (escape
   sequences, unknown fields, duplicate keys, shape or validation
   errors) raises [Slow] and the caller falls back to
   [Protocol.parse_request], so observable behaviour is always
   tree-equal — the fast path only ever short-circuits lines the tree
   parser would have answered [Ok].  Numbers are converted with
   [float_of_string] over the same character span the tree parser's
   number lexer consumes, so every float is bit-identical.

   Encode: streaming writers for the matching responses, byte-identical
   to [Json.to_string (Protocol.*_response ...)], reusing the caller's
   buffer. *)

open Ckpt_model
module Json = Ckpt_json.Json
module Failure_spec = Ckpt_failures.Failure_spec

exception Slow

type scan = { s : string; mutable pos : int }

let len sc = String.length sc.s

let skip_ws sc =
  while
    sc.pos < len sc
    &&
    match String.unsafe_get sc.s sc.pos with
    | ' ' | '\t' | '\n' | '\r' -> true
    | _ -> false
  do
    sc.pos <- sc.pos + 1
  done

let peek sc = if sc.pos < len sc then String.unsafe_get sc.s sc.pos else '\000'

let expect sc c =
  skip_ws sc;
  if sc.pos < len sc && String.unsafe_get sc.s sc.pos = c then
    sc.pos <- sc.pos + 1
  else raise Slow

let eat sc c =
  skip_ws sc;
  if sc.pos < len sc && String.unsafe_get sc.s sc.pos = c then begin
    sc.pos <- sc.pos + 1;
    true
  end
  else false

(* A string with no escapes; the opening quote is already consumed.
   Escapes are rare in protocol traffic — leave them to the tree. *)
let scan_string_body sc =
  let start = sc.pos in
  let rec seek () =
    if sc.pos >= len sc then raise Slow
    else
      match String.unsafe_get sc.s sc.pos with
      | '"' ->
          let v = String.sub sc.s start (sc.pos - start) in
          sc.pos <- sc.pos + 1;
          v
      | '\\' -> raise Slow
      | _ ->
          sc.pos <- sc.pos + 1;
          seek ()
  in
  seek ()

let scan_string sc =
  expect sc '"';
  scan_string_body sc

let is_number_char c =
  (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'

(* Same span, same [float_of_string] as the tree parser's number lexer:
   bit-identical floats by construction. *)
let scan_number sc =
  skip_ws sc;
  let start = sc.pos in
  while sc.pos < len sc && is_number_char (String.unsafe_get sc.s sc.pos) do
    sc.pos <- sc.pos + 1
  done;
  if sc.pos = start then raise Slow
  else
    match float_of_string_opt (String.sub sc.s start (sc.pos - start)) with
    | Some f -> f
    | None -> raise Slow

(* Field keys are matched in place — no substring per key. *)
let scan_key sc =
  expect sc '"';
  let start = sc.pos in
  let rec seek () =
    if sc.pos >= len sc then raise Slow
    else
      match String.unsafe_get sc.s sc.pos with
      | '"' ->
          let l = sc.pos - start in
          sc.pos <- sc.pos + 1;
          (start, l)
      | '\\' -> raise Slow
      | _ ->
          sc.pos <- sc.pos + 1;
          seek ()
  in
  seek ()

let key_eq sc (start, l) lit =
  l = String.length lit
  &&
  let rec go i =
    i = l || (String.unsafe_get sc.s (start + i) = String.unsafe_get lit i && go (i + 1))
  in
  go 0

(* Iterate the fields of an object whose '{' is not yet consumed.
   [field] receives the key span with the scanner positioned on the
   value (':' consumed) and must consume exactly that value. *)
let scan_obj sc field =
  expect sc '{';
  skip_ws sc;
  if peek sc = '}' then sc.pos <- sc.pos + 1
  else
    let rec pairs () =
      let key = scan_key sc in
      expect sc ':';
      field key;
      if eat sc ',' then pairs () else expect sc '}'
    in
    pairs ()

let required = function Some v -> v | None -> raise Slow

(* Duplicate keys would shadow differently than the tree's first-wins
   [List.assoc]; bail instead of choosing. *)
let fresh = function None -> () | Some _ -> raise Slow

(* --------------- problem pieces (mirrors Codec.*_of_json) --------------- *)

let scan_overhead sc =
  let eps = ref None and alpha = ref None and h = ref None in
  scan_obj sc (fun key ->
      if key_eq sc key "eps" then begin
        fresh !eps;
        eps := Some (scan_number sc)
      end
      else if key_eq sc key "alpha" then begin
        fresh !alpha;
        alpha := Some (scan_number sc)
      end
      else if key_eq sc key "h" then begin
        fresh !h;
        h := Some (scan_string sc)
      end
      else raise Slow);
  let eps = required !eps and alpha = required !alpha in
  match required !h with
  | "0" -> Overhead.constant eps
  | "N" -> if alpha = 0. then Overhead.constant eps else Overhead.linear ~eps ~alpha
  | _ -> raise Slow

let scan_level sc =
  let name = ref None and ckpt = ref None and restart = ref None in
  scan_obj sc (fun key ->
      if key_eq sc key "name" then begin
        fresh !name;
        name := Some (scan_string sc)
      end
      else if key_eq sc key "ckpt" then begin
        fresh !ckpt;
        ckpt := Some (scan_overhead sc)
      end
      else if key_eq sc key "restart" then begin
        fresh !restart;
        restart := Some (scan_overhead sc)
      end
      else raise Slow);
  Level.v ~name:(required !name) ~restart:(required !restart) (required !ckpt)

let scan_speedup sc =
  let kind = ref None
  and kappa = ref None
  and n_star = ref None
  and serial_fraction = ref None
  and peak = ref None in
  scan_obj sc (fun key ->
      if key_eq sc key "kind" then begin
        fresh !kind;
        kind := Some (scan_string sc)
      end
      else if key_eq sc key "kappa" then begin
        fresh !kappa;
        kappa := Some (scan_number sc)
      end
      else if key_eq sc key "n_star" then begin
        fresh !n_star;
        n_star := Some (scan_number sc)
      end
      else if key_eq sc key "serial_fraction" then begin
        fresh !serial_fraction;
        serial_fraction := Some (scan_number sc)
      end
      else if key_eq sc key "peak" then begin
        fresh !peak;
        peak := Some (scan_number sc)
      end
      else raise Slow);
  match required !kind with
  | "linear" -> Speedup.linear ~kappa:(required !kappa)
  | "quadratic" -> Speedup.quadratic ~kappa:(required !kappa) ~n_star:(required !n_star)
  | "amdahl" ->
      Speedup.amdahl ~serial_fraction:(required !serial_fraction) ~peak:(required !peak)
  | "gustafson" ->
      Speedup.gustafson ~serial_fraction:(required !serial_fraction)
        ~peak:(required !peak)
  | _ -> raise Slow

let scan_float_array sc =
  expect sc '[';
  skip_ws sc;
  if peek sc = ']' then begin
    sc.pos <- sc.pos + 1;
    [||]
  end
  else
    let rec items acc =
      let v = scan_number sc in
      if eat sc ',' then items (v :: acc) else begin
        expect sc ']';
        Array.of_list (List.rev (v :: acc))
      end
    in
    items []

let scan_levels sc =
  expect sc '[';
  skip_ws sc;
  if peek sc = ']' then begin
    sc.pos <- sc.pos + 1;
    [||]
  end
  else
    let rec items acc =
      let v = scan_level sc in
      if eat sc ',' then items (v :: acc) else begin
        expect sc ']';
        Array.of_list (List.rev (v :: acc))
      end
    in
    items []

let scan_problem sc =
  let te = ref None
  and speedup = ref None
  and levels = ref None
  and alloc = ref None
  and rates = ref None
  and baseline_scale = ref None in
  scan_obj sc (fun key ->
      if key_eq sc key "te" then begin
        fresh !te;
        te := Some (scan_number sc)
      end
      else if key_eq sc key "speedup" then begin
        fresh !speedup;
        speedup := Some (scan_speedup sc)
      end
      else if key_eq sc key "levels" then begin
        fresh !levels;
        levels := Some (scan_levels sc)
      end
      else if key_eq sc key "alloc" then begin
        fresh !alloc;
        alloc := Some (scan_number sc)
      end
      else if key_eq sc key "rates_per_day" then begin
        fresh !rates;
        rates := Some (scan_float_array sc)
      end
      else if key_eq sc key "baseline_scale" then begin
        fresh !baseline_scale;
        baseline_scale := Some (scan_number sc)
      end
      else raise Slow);
  let levels = required !levels and rates = required !rates in
  if Array.length rates <> Array.length levels then raise Slow;
  let problem =
    { Optimizer.te = required !te;
      speedup = required !speedup;
      levels;
      alloc = required !alloc;
      spec = Failure_spec.v ~baseline_scale:(required !baseline_scale) rates }
  in
  Optimizer.check_problem problem;
  problem

let scan_problems sc =
  expect sc '[';
  skip_ws sc;
  if peek sc = ']' then raise Slow (* tree path owns the "empty" error *)
  else
    let rec items acc =
      let v = scan_problem sc in
      if eat sc ',' then items (v :: acc) else begin
        expect sc ']';
        Array.of_list (List.rev (v :: acc))
      end
    in
    items []

(* The request id can be any JSON value; scalars cover real traffic. *)
let scan_id sc =
  skip_ws sc;
  match peek sc with
  | '"' ->
      sc.pos <- sc.pos + 1;
      Json.String (scan_string_body sc)
  | '-' | '0' .. '9' -> Json.Number (scan_number sc)
  | 't' | 'f' | 'n' ->
      let lit w v =
        let n = String.length w in
        if sc.pos + n <= len sc && String.sub sc.s sc.pos n = w then begin
          sc.pos <- sc.pos + n;
          v
        end
        else raise Slow
      in
      if peek sc = 't' then lit "true" (Json.Bool true)
      else if peek sc = 'f' then lit "false" (Json.Bool false)
      else lit "null" Json.Null
  | _ -> raise Slow

(* --------------- requests --------------- *)

let positive f = if not (f > 0.) then raise Slow

let scan_request sc =
  let op = ref None
  and id = ref None
  and problem = ref None
  and problems = ref None
  and solution = ref None
  and fixed_n = ref None
  and delta = ref None
  and param = ref None
  and values = ref None in
  scan_obj sc (fun key ->
      if key_eq sc key "op" then begin
        fresh !op;
        op := Some (scan_string sc)
      end
      else if key_eq sc key "id" then begin
        fresh !id;
        id := Some (scan_id sc)
      end
      else if key_eq sc key "problem" then begin
        fresh !problem;
        problem := Some (scan_problem sc)
      end
      else if key_eq sc key "problems" then begin
        fresh !problems;
        problems := Some (scan_problems sc)
      end
      else if key_eq sc key "solution" then begin
        fresh !solution;
        solution := Some (scan_string sc)
      end
      else if key_eq sc key "fixed_n" then begin
        fresh !fixed_n;
        fixed_n := Some (scan_number sc)
      end
      else if key_eq sc key "delta" then begin
        fresh !delta;
        delta := Some (scan_number sc)
      end
      else if key_eq sc key "param" then begin
        fresh !param;
        param := Some (scan_string sc)
      end
      else if key_eq sc key "values" then begin
        fresh !values;
        values := Some (scan_float_array sc)
      end
      else raise Slow);
  skip_ws sc;
  if sc.pos <> len sc then raise Slow;
  let solution =
    match !solution with
    | None -> Protocol.Ml_opt
    | Some "ml-opt" -> Protocol.Ml_opt
    | Some "ml-ori" -> Protocol.Ml_ori
    | Some "sl-opt" -> Protocol.Sl_opt
    | Some "sl-ori" -> Protocol.Sl_ori
    | Some _ -> raise Slow
  in
  Option.iter positive !fixed_n;
  let delta = Option.value !delta ~default:Protocol.default_delta in
  positive delta;
  let query problem = { Protocol.problem; solution; fixed_n = !fixed_n; delta } in
  let request =
    match required !op with
    | "plan" ->
        if Option.is_some !problems || Option.is_some !param || Option.is_some !values
        then raise Slow;
        Protocol.Plan (query (required !problem))
    | "batch-plan" ->
        if Option.is_some !problem || Option.is_some !param || Option.is_some !values
        then raise Slow;
        Protocol.Batch_plan { queries = Array.map query (required !problems) }
    | "sweep" ->
        if Option.is_some !problems then raise Slow;
        let param =
          match required !param with
          | "scale" | "fixed_n" -> Protocol.Scale
          | "te" -> Protocol.Te
          | "alloc" -> Protocol.Alloc
          | _ -> raise Slow
        in
        let values = required !values in
        if Array.length values = 0 then raise Slow;
        Array.iter (fun v -> if not (v > 0. && Float.is_finite v) then raise Slow) values;
        Protocol.Sweep { base = query (required !problem); param; values }
    | _ -> raise Slow
  in
  { Protocol.id = !id; request = Ok request }

let parse_request line =
  match scan_request { s = line; pos = 0 } with
  | envelope -> envelope
  | exception _ -> Protocol.parse_request line

(* --------------- responses --------------- *)

let write_id buf = function
  | None -> ()
  | Some id ->
      Buffer.add_string buf "\"id\":";
      Json.add_json buf id;
      Buffer.add_char buf ','

let write_error buf (e : Protocol.error) =
  Buffer.add_string buf "{\"code\":";
  Json.add_escaped buf e.Protocol.code;
  Buffer.add_string buf ",\"message\":";
  Json.add_escaped buf e.Protocol.message;
  if e.Protocol.attempts > 0 then begin
    Buffer.add_string buf ",\"attempts\":";
    Json.add_number buf (float_of_int e.Protocol.attempts)
  end;
  Buffer.add_char buf '}'

let write_degraded buf = function
  | None -> ()
  | Some { Protocol.fallback; reason } ->
      Buffer.add_string buf ",\"degraded\":true,\"fallback\":\"";
      Buffer.add_string buf (Protocol.solution_to_string fallback);
      Buffer.add_string buf "\",\"degraded_reason\":";
      write_error buf reason

let write_bool buf b = Buffer.add_string buf (if b then "true" else "false")

let write_answer_fields buf (a : Protocol.answer) =
  Buffer.add_string buf "\"cached\":";
  write_bool buf a.Protocol.cached;
  Buffer.add_string buf ",\"plan\":";
  Ckpt_model.Codec.write_plan buf a.Protocol.plan;
  write_degraded buf a.Protocol.degraded

let write_plan_response buf ?id (a : Protocol.answer) =
  Buffer.add_char buf '{';
  write_id buf id;
  Buffer.add_string buf "\"ok\":true,\"op\":\"plan\",";
  write_answer_fields buf a;
  Buffer.add_char buf '}'

let solved_count points =
  Array.fold_left (fun n o -> if Result.is_ok o then n + 1 else n) 0 points

let write_batch_plan_response buf ?id points =
  Buffer.add_char buf '{';
  write_id buf id;
  Buffer.add_string buf "\"ok\":true,\"op\":\"batch-plan\",\"count\":";
  Json.add_number buf (float_of_int (Array.length points));
  Buffer.add_string buf ",\"solved\":";
  Json.add_number buf (float_of_int (solved_count points));
  Buffer.add_string buf ",\"results\":[";
  Array.iteri
    (fun i outcome ->
      if i > 0 then Buffer.add_char buf ',';
      match outcome with
      | Ok a ->
          Buffer.add_char buf '{';
          write_answer_fields buf a;
          Buffer.add_char buf '}'
      | Error e ->
          Buffer.add_string buf "{\"error\":";
          write_error buf e;
          Buffer.add_char buf '}')
    points;
  Buffer.add_string buf "]}"

let write_sweep_response buf ?id ~param points =
  Buffer.add_char buf '{';
  write_id buf id;
  Buffer.add_string buf "\"ok\":true,\"op\":\"sweep\",\"param\":\"";
  Buffer.add_string buf (Protocol.sweep_param_to_string param);
  Buffer.add_string buf "\",\"count\":";
  Json.add_number buf (float_of_int (Array.length points));
  Buffer.add_string buf ",\"solved\":";
  Json.add_number buf
    (float_of_int
       (Array.fold_left (fun n (_, o) -> if Result.is_ok o then n + 1 else n) 0 points));
  Buffer.add_string buf ",\"results\":[";
  Array.iteri
    (fun i (v, outcome) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"value\":";
      Json.add_number buf v;
      (match outcome with
      | Ok a ->
          Buffer.add_char buf ',';
          write_answer_fields buf a
      | Error e ->
          Buffer.add_string buf ",\"error\":";
          write_error buf e);
      Buffer.add_char buf '}')
    points;
  Buffer.add_string buf "]}"
