(** Zero-tree wire fastpath for the hot protocol shapes.

    The service's steady-state traffic is [plan] / [batch-plan] /
    [sweep] requests answered with plan payloads.  Routing every line
    through the {!Ckpt_json.Json.t} tree costs two tree materializations
    per request (parse, then response build) that together dominate the
    non-solver allocation profile.  This module removes both:

    {ul
    {- {!parse_request} scans the raw line with a recursive-descent
       lexer that builds {!Protocol.query} values directly.  It accepts
       a strict subset of the tree grammar — no escape sequences, no
       unknown or duplicate fields, scalar ids — and falls back to
       {!Protocol.parse_request} on any deviation or validation failure,
       so its observable behaviour is exactly the tree parser's.
       Numbers are converted by [float_of_string] over the same
       character span the tree lexer consumes: every float is
       bit-identical to the tree path.}
    {- The [write_*] encoders stream responses into a caller-supplied
       (reusable) [Buffer.t], byte-identical to
       [Json.to_string (Protocol.*_response ...)].}} *)

val parse_request : string -> Protocol.envelope
(** Drop-in replacement for {!Protocol.parse_request}: same envelopes,
    same errors, same floats; only faster on well-formed solver-bound
    lines. *)

val write_plan_response : Buffer.t -> ?id:Ckpt_json.Json.t -> Protocol.answer -> unit
(** Byte-identical to [Json.to_string (Protocol.plan_response ?id a)]. *)

val write_batch_plan_response :
  Buffer.t -> ?id:Ckpt_json.Json.t -> (Protocol.answer, Protocol.error) result array -> unit
(** Byte-identical to [Json.to_string (Protocol.batch_plan_response ?id points)]. *)

val write_sweep_response :
  Buffer.t ->
  ?id:Ckpt_json.Json.t ->
  param:Protocol.sweep_param ->
  (float * (Protocol.answer, Protocol.error) result) array ->
  unit
(** Byte-identical to
    [Json.to_string (Protocol.sweep_response ?id ~param points)]. *)
