(** The `ckpt_serve` JSON-lines protocol.

    One request per line, one response per line, order preserved.  The
    operations:

    - [{"op":"plan", "problem":P, ...}] — one optimizer solve;
    - [{"op":"sweep", "problem":P, "param":"scale"|"te"|"alloc",
        "values":[...]}] — the capacity-planning fan-out: one solve per
      value, the base problem varied along [param];
    - [{"op":"simulate-validate", "problem":P, "replications":k,
        "seed":s}] — solve, then validate the predicted wall clock
      against [k] simulated executions;
    - [{"op":"observe", "events":[...]}] — feed
      {!Ckpt_adaptive.Telemetry} events (the {!Ckpt_adaptive.Telemetry.of_json}
      shape) into the service's session estimators;
    - [{"op":"estimate", "baseline_scale":N_b, "coverage":0.95}] —
      report the fitted per-level failure rates with exact Poisson
      confidence intervals and the observed cost means;
    - [{"op":"replan", "problem":P, "prior_strength":tau}] — re-run
      Algorithm 1 with [P]'s spec and overhead laws replaced by the
      session estimates ([tau] core-seconds of shrinkage toward [P]'s
      own rates); never cached, timed into the [replan_ms] metrics
      series;
    - [{"op":"calibrate", "problem":P, "log":[...], "prior_strength":tau,
        "compare":b}] — POST raw SCR-style log lines: they are parsed
      (totally — garbage lines become skip counts), phase-accounted into
      the session estimators, and [P] is re-planned from the fit; the
      response carries the plan, the fitted problem, a provenance report
      and (with [compare]) the Young/Daly/ML side-by-side;
    - [{"op":"stats"}] — the {!Metrics} snapshot.

    [observe]/[estimate]/[replan]/[calibrate] are stateful: they read and mutate the
    service's telemetry session, and are therefore executed inline, in
    line order, rather than fanned out — an [observe] earlier in a batch
    is visible to a [replan] later in the same batch.

    Every request accepts an optional ["id"] (any JSON value, echoed
    back), ["solution"] (["ml-opt"] default, ["ml-ori"], ["sl-opt"],
    ["sl-ori"]), ["fixed_n"] (pin the scale) and ["delta"] (outer-loop
    threshold, default 1e-9).

    Responses carry ["ok"] — [true] with the payload, or [false] with a
    structured [{"code", "message", "attempts"?}] error.  Malformed
    input can never crash a worker: {!parse_request} funnels JSON
    errors, missing fields and {!Ckpt_model.Optimizer.check_problem}
    failures (e.g. a spec/hierarchy level-count mismatch) into
    [Error _] before any query reaches the pool.

    A response answered from the closed-form fallback chain additionally
    carries ["degraded": true], the ["fallback"] solution that produced
    the plan, and a ["degraded_reason"] error explaining why the primary
    solve was abandoned. *)

type error = { code : string; message : string; attempts : int }
(** Codes: ["parse"] (not JSON), ["invalid-request"] (JSON but not a
    valid request), ["invalid-problem"] (problem fails decoding or
    {!Ckpt_model.Optimizer.check_problem}), ["solve-failure"] (the
    optimizer raised), ["solver-diverged"] (outer fixed point hit its
    iteration cap), ["solver-non-finite"] (failure burden unbounded /
    NaN estimate), ["deadline-exceeded"] (per-request retry budget ran
    out), ["circuit-open"] (breaker is serving fallbacks only),
    ["no-telemetry"] ([estimate]/[replan] before any exposure was
    observed).  [attempts] counts solve attempts actually made (0 when
    the failure precedes any solve); it is serialized only when
    positive, keeping no-retry error payloads byte-identical to the
    pre-taxonomy format. *)

val error_v : ?attempts:int -> string -> string -> error
(** [error_v code message] builds an error ([attempts] defaults to 0). *)

type solution = Ml_opt | Ml_ori | Sl_opt | Sl_ori

type query = {
  problem : Ckpt_model.Optimizer.problem;
  solution : solution;
  fixed_n : float option;
  delta : float;
}

type sweep_param = Scale | Te | Alloc

type request =
  | Plan of query
  | Batch_plan of { queries : query array }
      (** [{"op":"batch-plan", "problems":[P1; P2; ...], "solution":s,
          "fixed_n":n, "delta":d}] — K plan queries sharing the
          envelope's solution/fixed_n/delta, answered per problem in
          order.  The canonical wire shape for the planner's SoA batch
          solver.  Rejected atomically: one undecodable or invalid
          problem fails the whole request, like a bad sweep value. *)
  | Sweep of { base : query; param : sweep_param; values : float array }
  | Simulate_validate of { query : query; replications : int; seed : int }
  | Observe of { events : Ckpt_adaptive.Telemetry.event list }
  | Estimate of { baseline_scale : float; coverage : float }
  | Replan of { query : query; prior_strength : float }
  | Calibrate of {
      query : query;
      log : string list;
      prior_strength : float;
      compare : bool;
    }
      (** [{"op":"calibrate", "problem":P, "log":[lines...],
          "prior_strength":tau, "compare":bool}] — feed raw SCR-style
          log lines through the {!Ckpt_calibrate} pipeline into the
          session estimators (stateful, like [observe]: successive
          calibrates accumulate evidence) and re-plan [P] from the
          fitted parameters.  With [compare], the response also carries
          the Young/Daly/ML side-by-side. *)
  | Stats

type envelope = { id : Ckpt_json.Json.t option; request : (request, error) result }
(** The [id] survives even when the request itself is rejected, so error
    responses can still be correlated by the client. *)

val default_delta : float
(** Outer-loop threshold applied when a request omits ["delta"] (1e-9). *)

val solution_of_string : string -> (solution, error) result
val solution_to_string : solution -> string
val sweep_param_to_string : sweep_param -> string

val parse_request : string -> envelope
(** Parse and fully validate one request line; every problem it returns
    has passed [Optimizer.check_problem], and every failure is folded
    into the envelope's [Error _] with its code. *)

val sweep_point : query -> sweep_param -> float -> query
(** The query for one sweep grid point: [Scale] pins [fixed_n], [Te] and
    [Alloc] rebuild the problem with the field replaced. *)

val simulation_problem : query -> Ckpt_model.Optimizer.problem
(** The problem a plan should be simulated against: the original for ML
    solutions, {!Ckpt_model.Optimizer.single_level_problem} for SL ones
    (their plans only have a PFS level). *)

(** {1 Answers}

    What the planner hands back for a solvable query: the plan, whether
    it came from the cache, and — when the primary multilevel solve was
    abandoned — which closed-form fallback produced it and why. *)

type degraded = { fallback : solution; reason : error }

type answer = {
  plan : Ckpt_model.Optimizer.plan;
  cached : bool;
  degraded : degraded option;
}

(** {1 Responses} *)

val error_response : ?id:Ckpt_json.Json.t -> error -> Ckpt_json.Json.t

val plan_response : ?id:Ckpt_json.Json.t -> answer -> Ckpt_json.Json.t

val batch_plan_response :
  ?id:Ckpt_json.Json.t -> (answer, error) result array -> Ckpt_json.Json.t
(** Per-problem results in request order; like {!sweep_response}, one
    failed solve does not fail the batch. *)

val sweep_response :
  ?id:Ckpt_json.Json.t ->
  param:sweep_param ->
  (float * (answer, error) result) array ->
  Ckpt_json.Json.t
(** Per-point results: each grid value maps to a plan (with its cached
    flag, and degraded markers when served by a fallback) or an error;
    one bad point does not fail the sweep. *)

type validation = {
  predicted_wall_clock : float;
  simulated : Ckpt_numerics.Stats.summary;
  relative_error : float;
  completed_runs : int;
}

val validation_response :
  ?id:Ckpt_json.Json.t ->
  ?degraded:degraded ->
  cached:bool ->
  plan:Ckpt_model.Optimizer.plan ->
  validation ->
  Ckpt_json.Json.t

val observe_response :
  ?id:Ckpt_json.Json.t -> events:int -> failures:int -> exposure:float -> unit -> Ckpt_json.Json.t
(** Acknowledge an [observe]: events ingested this call, cumulative
    failure count and raw exposure of the session. *)

val estimate_response : ?id:Ckpt_json.Json.t -> Ckpt_json.Json.t -> Ckpt_json.Json.t
(** Wrap the estimate payload the service assembles (fitted rates,
    confidence intervals, cost means). *)

val replan_response :
  ?id:Ckpt_json.Json.t ->
  ?degraded:degraded ->
  plan:Ckpt_model.Optimizer.plan ->
  fitted:Ckpt_model.Optimizer.problem ->
  unit ->
  Ckpt_json.Json.t
(** The re-planned solution together with the telemetry-fitted problem
    it solves. *)

val calibrate_response :
  ?id:Ckpt_json.Json.t ->
  ?degraded:degraded ->
  ?comparison:Ckpt_json.Json.t ->
  plan:Ckpt_model.Optimizer.plan ->
  fitted:Ckpt_model.Optimizer.problem ->
  provenance:Ckpt_json.Json.t ->
  unit ->
  Ckpt_json.Json.t
(** The calibrated plan, the fitted problem it solves, the provenance
    report ({!Ckpt_calibrate.Fit.report_to_json} shape: parse/skip
    counts, per-level samples, CIs, prior weight) and — when requested —
    the Young/Daly/ML comparison. *)

val stats_response : ?id:Ckpt_json.Json.t -> Ckpt_json.Json.t -> Ckpt_json.Json.t
(** Wrap a {!Metrics.to_json} payload. *)

val response_ok : Ckpt_json.Json.t -> bool
val response_error : Ckpt_json.Json.t -> error option

val response_degraded : Ckpt_json.Json.t -> bool
(** Whether a response carries the ["degraded": true] marker. *)
