module Optimizer = Ckpt_model.Optimizer
module Speedup = Ckpt_model.Speedup
module Level = Ckpt_model.Level
module Overhead = Ckpt_model.Overhead
module Failure_spec = Ckpt_failures.Failure_spec
module Telemetry = Ckpt_adaptive.Telemetry

let demo_problem () =
  { Optimizer.te = 1024. *. 3600.;
    speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
    levels = Level.fti_fusion;
    alloc = 10.;
    spec = Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6" }

let demo_config ?(n = 1024.) problem =
  let plan = Optimizer.ml_ori_scale ~n problem in
  Ckpt_sim.Run_config.of_plan ~problem ~plan ()

let last_at events =
  List.fold_left (fun _ ev -> Telemetry.at ev) 0. events

let drop_run_end events =
  List.filter (function Telemetry.Run_end _ -> false | _ -> true) events

let session ?(runs = 4) ?(gap_s = 900.) ?(restart_on_resume = true) ~seed
    (config : Ckpt_sim.Run_config.t) =
  let pfs = Array.length config.levels in
  let pfs_restart =
    Overhead.cost config.levels.(pfs - 1).Level.restart config.n
  in
  let chunks = ref [] in
  let t0 = ref 0. in
  for i = 0 to runs - 1 do
    let events, _outcome = Telemetry.of_run ~seed:(seed + (7919 * i)) config in
    let killed = i < runs - 1 in
    let events = if killed then drop_run_end events else events in
    let events = List.map (fun ev -> Telemetry.shift ev ~by:!t0) events in
    let events =
      (* A resumed run opens by reading the last surviving (PFS)
         checkpoint back — the fetch a real toolkit logs first. *)
      if restart_on_resume && i > 0 then
        match events with
        | (Telemetry.Run_start { at; _ } as start) :: rest ->
            start
            :: Telemetry.Restart
                 { at = at +. pfs_restart; level = pfs; duration = pfs_restart }
            :: rest
        | other -> other
      else events
    in
    t0 := last_at events +. gap_s;
    chunks := events :: !chunks
  done;
  List.concat (List.rev !chunks)

let session_lines ?runs ?gap_s ?restart_on_resume ~seed config =
  Scr_log.of_telemetry (session ?runs ?gap_s ?restart_on_resume ~seed config)
