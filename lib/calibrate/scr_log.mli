(** A total parser for SCR/FTI-style line-oriented event logs.

    Checkpoint toolkits log one event per line as whitespace-separated
    [key=value] tokens; the grammar here is the subset a calibration
    pipeline needs (see [lib/calibrate/README.md] for the full grammar):

    {v
    t=120.5 event=START scale=100000 levels=4
    t=3720.5 event=COMPUTE secs=3600 productive=3450
    t=3745.5 event=CHECKPOINT level=1 secs=25
    t=3900.0 event=FLUSH secs=140 kind=ckpt level=4
    t=4100.0 event=FAILURE level=2
    t=4200.0 event=FETCH secs=40 level=4
    t=4220.0 event=REBUILD secs=20
    t=9000.0 event=END complete=1
    v}

    Every line needs [t] (a finite timestamp, seconds) and [event] (a
    label, matched case-insensitively).  Duration fields ([secs],
    [productive]) must be finite and non-negative; level indices must
    lie in [1..max_levels].  Unknown keys are ignored; a repeated key's
    last value wins.  Blank lines and lines starting with [#] are
    comments.

    The parser is {e total}: arbitrary bytes — truncated lines, binary
    garbage, malformed numbers, unknown labels — yield structured
    {!skip}s carrying the 1-based line number, a reason, and a truncated
    copy of the offending text.  No input raises. *)

type record =
  | Start of { at : float; scale : float option; levels : int option }
      (** a job (re)starts; [scale] in cores, [levels] the hierarchy size *)
  | Fetch of { at : float; secs : float; level : int option }
      (** checkpoint read from storage during restart *)
  | Rebuild of { at : float; secs : float; level : int option }
      (** state reconstruction after a fetch ([RESTART_SUCCESS] is an
          accepted alias) *)
  | Compute of { at : float; secs : float; productive : float option }
      (** application progress; [productive <= secs] is first-time work *)
  | Checkpoint of { at : float; secs : float; level : int option }
      (** a completed checkpoint write *)
  | Flush of { at : float; secs : float; level : int option; output : bool }
      (** asynchronous drain to slower storage; [kind=ckpt] (default)
          counts toward checkpoint cost, [kind=output] toward compute *)
  | Failure of { at : float; level : int option }
      (** an observed failure, recoverable from [level] *)
  | End of { at : float; complete : bool }
      (** the job ends; [complete=0] marks a known-interrupted run *)

type skip = {
  line : int;  (** 1-based line number *)
  reason : string;
  text : string;  (** the offending line, truncated to 120 bytes *)
}

type t = {
  records : (int * record) list;  (** (line number, record), input order *)
  skips : skip list;  (** input order *)
  lines : int;  (** total lines seen *)
  blank : int;  (** blank and [#]-comment lines *)
}

val max_levels : int
(** Same bound as {!Ckpt_adaptive.Telemetry.max_levels}. *)

val parse_line : string -> (record option, string) result
(** One line; [Ok None] for blank/comment lines.  Total. *)

val parse : string list -> t
(** A whole log.  [List.length records + List.length skips + blank =
    lines] always holds.  Total. *)

val parse_string : string -> t
(** {!parse} after splitting on newlines (a sole trailing newline does
    not count an extra blank line). *)

val record_at : record -> float

val to_line : record -> string
(** Render one record in the grammar; [parse_line (to_line r)] yields
    [Ok (Some r)] up to float formatting. *)

val of_telemetry :
  ?pfs_level:int -> Ckpt_adaptive.Telemetry.event list -> string list
(** Render simulator telemetry as an SCR-style session log, exercising
    the composite phases a real log has: a [Ckpt] at [pfs_level]
    (default: the level count announced by the last [Run_start], else
    the highest level seen) becomes [CHECKPOINT] + [FLUSH kind=ckpt]
    whose durations sum to the original; a [Restart] becomes [FETCH] +
    [REBUILD] likewise.  Other events map 1:1.  Deterministic. *)

val pp_skip : Format.formatter -> skip -> unit
