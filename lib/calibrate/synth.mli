(** Deterministic synthetic SCR sessions from the simulator telemetry
    tap — the fixture source for the committed example log, the CLI
    self-check and the round-trip tests.

    A session is [runs] simulated executions of one configuration
    spliced onto a global clock with [gap_s] of downtime between them.
    Every run but the last is {e killed}: its terminating [Run_end] is
    dropped, so the accountant must infer the interruption from the
    back-to-back [START]; resumed runs open with a PFS restart read
    (the fetch a real toolkit would log), so fetch+rebuild attribution
    is exercised end to end. *)

val demo_problem : unit -> Ckpt_model.Optimizer.problem
(** A small 4-level FTI-style problem (1024-core baseline, rates
    [24-18-12-6] per day) that simulates in milliseconds — the same
    scale as the benchmark validation config. *)

val demo_config : ?n:float -> Ckpt_model.Optimizer.problem -> Ckpt_sim.Run_config.t
(** Simulate the ML plan for [problem] pinned at scale [n] (default
    [1024.]). *)

val session :
  ?runs:int ->
  ?gap_s:float ->
  ?restart_on_resume:bool ->
  seed:int ->
  Ckpt_sim.Run_config.t ->
  Ckpt_adaptive.Telemetry.event list
(** [runs] defaults to [4], [gap_s] to [900.] seconds of downtime,
    [restart_on_resume] (inject the PFS recovery read at the head of
    each resumed run) to [true].  Deterministic in [seed]. *)

val session_lines :
  ?runs:int ->
  ?gap_s:float ->
  ?restart_on_resume:bool ->
  seed:int ->
  Ckpt_sim.Run_config.t ->
  string list
(** {!session} rendered through {!Scr_log.of_telemetry}. *)
