(** Fitting: feed accounted samples through the adaptive estimators and
    emit a calibrated {!Ckpt_model.Optimizer.problem} plus a provenance
    report.

    The fit is the same transform the adaptive planner applies online:
    per-level failure rates from {!Ckpt_adaptive.Rate_estimator.to_spec}
    (conjugate Gamma shrinkage toward the template's rates, weighted by
    [prior_strength] core-seconds of pseudo-exposure) and per-level
    overhead laws from {!Ckpt_adaptive.Cost_estimator.calibrated_levels}
    (multiplicative rescale at the mean observed scale; levels with
    fewer than [min_samples] cost samples keep the template's law).  The
    report records what the fit rests on — sample counts, exact Garwood
    CIs, the prior weight — so a consumer can judge how much is data and
    how much is prior. *)

type level_report = {
  level : int;  (** 1-based *)
  ckpt_samples : int;
  ckpt_mean : float;  (** observed mean write cost, seconds; [nan] if none *)
  restart_samples : int;
  restart_mean : float;
  failures : int;  (** raw count attributed to this level *)
  rate_per_day : float;  (** fitted [r_i] at the template's baseline scale *)
  ci_low : float;  (** Garwood interval on the raw counts *)
  ci_high : float;
}

type report = {
  lines : int;  (** log lines seen (0 when fitting bare telemetry) *)
  parsed : int;
  skipped : int;
  blank : int;
  starts : int;
  runs_interrupted : int;
  inferred_failures : int;
  exposure_core_seconds : float;
  total_failures : int;
  prior_strength : float;
  coverage : float;  (** CI coverage used for [ci_low]/[ci_high] *)
  levels : level_report array;
}

type fitted = {
  problem : Ckpt_model.Optimizer.problem;  (** calibrated *)
  rates : Ckpt_adaptive.Rate_estimator.t;
  costs : Ckpt_adaptive.Cost_estimator.t;
  report : report;
}

val apply :
  ?prior_strength:float ->
  ?min_samples:int ->
  template:Ckpt_model.Optimizer.problem ->
  rates:Ckpt_adaptive.Rate_estimator.t ->
  costs:Ckpt_adaptive.Cost_estimator.t ->
  unit ->
  Ckpt_model.Optimizer.problem
(** The calibrated problem: the template with fitted spec and levels.
    [prior_strength] defaults to [0.] (pure MLE), [min_samples] to [3]. *)

val report :
  ?coverage:float ->
  ?prior_strength:float ->
  ?log:Scr_log.t ->
  ?totals:Account.phase_totals ->
  template:Ckpt_model.Optimizer.problem ->
  rates:Ckpt_adaptive.Rate_estimator.t ->
  costs:Ckpt_adaptive.Cost_estimator.t ->
  unit ->
  report
(** Provenance for estimator state (cumulative when the estimators have
    seen more than one log).  [coverage] defaults to [0.95]. *)

val calibrate :
  ?prior_strength:float ->
  ?min_samples:int ->
  ?coverage:float ->
  ?half_life:float ->
  template:Ckpt_model.Optimizer.problem ->
  Scr_log.t ->
  (fitted, string) result
(** One-shot pipeline: account the parsed log (hierarchy size and
    default scale from [template]), fit fresh estimators, and build the
    calibrated problem.  [Error] when the log yields no exposure (no
    parsable timestamps advance the clock) or the calibrated problem
    fails {!Ckpt_model.Optimizer.check_problem}; never raises. *)

val report_to_json : report -> Ckpt_json.Json.t
val pp_report : Format.formatter -> report -> unit
