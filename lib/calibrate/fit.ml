module Optimizer = Ckpt_model.Optimizer
module Rate_estimator = Ckpt_adaptive.Rate_estimator
module Cost_estimator = Ckpt_adaptive.Cost_estimator
module J = Ckpt_json.Json

type level_report = {
  level : int;
  ckpt_samples : int;
  ckpt_mean : float;
  restart_samples : int;
  restart_mean : float;
  failures : int;
  rate_per_day : float;
  ci_low : float;
  ci_high : float;
}

type report = {
  lines : int;
  parsed : int;
  skipped : int;
  blank : int;
  starts : int;
  runs_interrupted : int;
  inferred_failures : int;
  exposure_core_seconds : float;
  total_failures : int;
  prior_strength : float;
  coverage : float;
  levels : level_report array;
}

type fitted = {
  problem : Optimizer.problem;
  rates : Rate_estimator.t;
  costs : Cost_estimator.t;
  report : report;
}

let apply ?(prior_strength = 0.) ?min_samples ~template ~rates ~costs () =
  { template with
    Optimizer.spec =
      Rate_estimator.to_spec ~prior_strength rates ~like:template.Optimizer.spec;
    levels = Cost_estimator.calibrated_levels ?min_samples costs ~prior:template.Optimizer.levels }

let report ?(coverage = 0.95) ?(prior_strength = 0.) ?log ?totals ~template
    ~rates ~costs () =
  let baseline_scale =
    template.Optimizer.spec.Ckpt_failures.Failure_spec.baseline_scale
  in
  let fitted_spec =
    Rate_estimator.to_spec ~prior_strength rates ~like:template.Optimizer.spec
  in
  let levels =
    Array.init (Rate_estimator.levels rates) (fun idx ->
        let level = idx + 1 in
        let ci_low, ci_high =
          Rate_estimator.confidence_per_day ~coverage rates ~level ~baseline_scale
        in
        { level;
          ckpt_samples = Cost_estimator.ckpt_count costs ~level;
          ckpt_mean = Cost_estimator.ckpt_mean costs ~level;
          restart_samples = Cost_estimator.restart_count costs ~level;
          restart_mean = Cost_estimator.restart_mean costs ~level;
          failures = Rate_estimator.count rates ~level;
          rate_per_day =
            fitted_spec.Ckpt_failures.Failure_spec.rates_per_day.(idx);
          ci_low;
          ci_high })
  in
  let lines, parsed, skipped, blank =
    match log with
    | None -> (0, 0, 0, 0)
    | Some (l : Scr_log.t) ->
        (l.lines, List.length l.records, List.length l.skips, l.blank)
  in
  let starts, runs_interrupted, inferred_failures =
    match totals with
    | None -> (0, 0, 0)
    | Some (t : Account.phase_totals) ->
        (t.starts, t.runs_interrupted, t.inferred_failures)
  in
  { lines;
    parsed;
    skipped;
    blank;
    starts;
    runs_interrupted;
    inferred_failures;
    exposure_core_seconds = Rate_estimator.exposure rates;
    total_failures = Rate_estimator.total_count rates;
    prior_strength;
    coverage;
    levels }

let calibrate ?(prior_strength = 0.) ?min_samples ?coverage ?half_life
    ~template (log : Scr_log.t) =
  let levels = Array.length template.Optimizer.levels in
  let default_scale =
    template.Optimizer.spec.Ckpt_failures.Failure_spec.baseline_scale
  in
  let cfg = Account.config ~default_scale ~levels () in
  let accounted = Account.run cfg log.records in
  let rates =
    Rate_estimator.observe_all
      (Rate_estimator.create ?half_life ~scale:default_scale ~levels ())
      accounted.events
  in
  let costs =
    Cost_estimator.observe_all
      (Cost_estimator.create ~scale:default_scale ~levels ())
      accounted.events
  in
  if Rate_estimator.exposure rates <= 0. then
    Error
      (Printf.sprintf
         "log carries no exposure: %d records parsed, %d skipped — nothing \
          advances the clock"
         (List.length log.records) (List.length log.skips))
  else
    let problem = apply ~prior_strength ?min_samples ~template ~rates ~costs () in
    match Optimizer.check_problem problem with
    | () ->
        let report =
          report ?coverage ~prior_strength ~log ~totals:accounted.totals
            ~template ~rates ~costs ()
        in
        Ok { problem; rates; costs; report }
    | exception Invalid_argument m -> Error ("calibrated problem invalid: " ^ m)

let level_to_json l =
  let num v = J.Number v in
  let int v = J.Number (float_of_int v) in
  (* nan means "no samples"; JSON has no nan, so encode as null. *)
  let fin v = if Float.is_finite v then J.Number v else J.Null in
  J.Obj
    [ ("level", int l.level);
      ("ckpt_samples", int l.ckpt_samples);
      ("ckpt_mean_s", fin l.ckpt_mean);
      ("restart_samples", int l.restart_samples);
      ("restart_mean_s", fin l.restart_mean);
      ("failures", int l.failures);
      ("rate_per_day", num l.rate_per_day);
      ("ci_low", num l.ci_low);
      ("ci_high", fin l.ci_high) ]

let report_to_json r =
  let num v = J.Number v in
  let int v = J.Number (float_of_int v) in
  J.Obj
    [ ("lines", int r.lines);
      ("parsed", int r.parsed);
      ("skipped", int r.skipped);
      ("blank", int r.blank);
      ("starts", int r.starts);
      ("runs_interrupted", int r.runs_interrupted);
      ("inferred_failures", int r.inferred_failures);
      ("exposure_core_seconds", num r.exposure_core_seconds);
      ("total_failures", int r.total_failures);
      ("prior_strength", num r.prior_strength);
      ("coverage", num r.coverage);
      ("levels", J.List (Array.to_list r.levels |> List.map level_to_json)) ]

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>lines: %d (%d parsed, %d skipped, %d blank)@ starts: %d \
     (interrupted %d, inferred failures %d)@ exposure: %.4g core-seconds, %d \
     failures total@ prior strength: %g core-seconds@ " r.lines r.parsed
    r.skipped r.blank r.starts r.runs_interrupted r.inferred_failures
    r.exposure_core_seconds r.total_failures r.prior_strength;
  Array.iter
    (fun l ->
      Format.fprintf ppf
        "level %d: rate %.4g/day [%.4g, %.4g] (%d failures), ckpt %.4g s \
         (%d), restart %.4g s (%d)@ "
        l.level l.rate_per_day l.ci_low l.ci_high l.failures l.ckpt_mean
        l.ckpt_samples l.restart_mean l.restart_samples)
    r.levels;
  Format.fprintf ppf "@]"
