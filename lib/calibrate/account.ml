module Telemetry = Ckpt_adaptive.Telemetry
module J = Ckpt_json.Json

type config = { levels : int; default_scale : float }

let config ?(default_scale = 1.) ~levels () =
  if levels < 1 then invalid_arg "Account.config: levels must be >= 1";
  if not (Float.is_finite default_scale && default_scale > 0.) then
    invalid_arg "Account.config: default_scale must be positive";
  { levels; default_scale }

type phase_totals = {
  starts : int;
  runs_interrupted : int;
  inferred_failures : int;
  explicit_failures : int array;
  fetch_time : float;
  fetch_count : int;
  rebuild_time : float;
  rebuild_count : int;
  restart_time : float array;
  restart_count : int array;
  ckpt_time : float array;
  ckpt_count : int array;
  compute_time : float;
  compute_count : int;
  flush_output_time : float;
  flush_output_count : int;
  out_of_range_levels : int;
}

type t = { events : Telemetry.event list; totals : phase_totals }

(* Mutable builder; the public totals are a frozen copy. *)
type state = {
  cfg : config;
  mutable events : Telemetry.event list;  (* reversed *)
  mutable pending : pending option;
  mutable run_open : bool;
  mutable last_at : float;
  mutable scale : float;  (* last announced execution scale *)
  mutable starts : int;
  mutable runs_interrupted : int;
  mutable inferred_failures : int;
  explicit_failures : int array;
  mutable fetch_time : float;
  mutable fetch_count : int;
  mutable rebuild_time : float;
  mutable rebuild_count : int;
  restart_time : float array;
  restart_count : int array;
  ckpt_time : float array;
  ckpt_count : int array;
  mutable compute_time : float;
  mutable compute_count : int;
  mutable flush_output_time : float;
  mutable flush_output_count : int;
  mutable out_of_range : int;
}

and pending =
  | Pfetch of { at : float; secs : float; level : int option }
  | Pckpt of { at : float; secs : float; level : int }

let clamp_level st = function
  | None -> None
  | Some l when l >= 1 && l <= st.cfg.levels -> Some l
  | Some l ->
      st.out_of_range <- st.out_of_range + 1;
      Some (if l < 1 then 1 else st.cfg.levels)

let pfs st = st.cfg.levels

let emit st ev = st.events <- ev :: st.events

let flush_pending st =
  match st.pending with
  | None -> ()
  | Some p ->
      st.pending <- None;
      (match p with
      | Pfetch { at; secs; level } ->
          let level = Option.value level ~default:(pfs st) in
          st.restart_time.(level - 1) <- st.restart_time.(level - 1) +. secs;
          st.restart_count.(level - 1) <- st.restart_count.(level - 1) + 1;
          emit st (Telemetry.Restart { at; level; duration = secs })
      | Pckpt { at; secs; level } ->
          st.ckpt_time.(level - 1) <- st.ckpt_time.(level - 1) +. secs;
          st.ckpt_count.(level - 1) <- st.ckpt_count.(level - 1) + 1;
          emit st (Telemetry.Ckpt { at; level; duration = secs }))

(* The level an inferred interruption is attributed to: the first FETCH
   of the run that follows it read the surviving checkpoint, so its tier
   is the failure's severity.  [records] is scanned forward from the
   START at [i] until the next START. *)
let first_fetch_level records i =
  let n = Array.length records in
  let rec scan j =
    if j >= n then None
    else
      match snd records.(j) with
      | Scr_log.Start _ -> None
      | Scr_log.Fetch { level; _ } -> Some level
      | _ -> scan (j + 1)
  in
  Option.join (scan (i + 1))

let run cfg record_list =
  let records = Array.of_list record_list in
  let st =
    { cfg;
      events = [];
      pending = None;
      run_open = false;
      last_at = 0.;
      scale = cfg.default_scale;
      starts = 0;
      runs_interrupted = 0;
      inferred_failures = 0;
      explicit_failures = Array.make cfg.levels 0;
      fetch_time = 0.;
      fetch_count = 0;
      rebuild_time = 0.;
      rebuild_count = 0;
      restart_time = Array.make cfg.levels 0.;
      restart_count = Array.make cfg.levels 0;
      ckpt_time = Array.make cfg.levels 0.;
      ckpt_count = Array.make cfg.levels 0;
      compute_time = 0.;
      compute_count = 0;
      flush_output_time = 0.;
      flush_output_count = 0;
      out_of_range = 0 }
  in
  Array.iteri
    (fun i (_line, record) ->
      (match record with
      | Scr_log.Start { at; scale; levels = _ } ->
          flush_pending st;
          if st.run_open then begin
            (* Back-to-back START: the previous run died without an END.
               Close it at its last timestamp so no exposure accrues
               across the downtime, and record the failure at the tier
               the restart read from. *)
            let level =
              Option.value (clamp_level st (first_fetch_level records i))
                ~default:(pfs st)
            in
            st.inferred_failures <- st.inferred_failures + 1;
            st.runs_interrupted <- st.runs_interrupted + 1;
            emit st (Telemetry.Failure { at = st.last_at; level });
            emit st (Telemetry.Run_end { at = st.last_at; completed = false })
          end;
          (match scale with Some s -> st.scale <- s | None -> ());
          st.starts <- st.starts + 1;
          st.run_open <- true;
          emit st
            (Telemetry.Run_start { at; scale = st.scale; levels = cfg.levels })
      | Scr_log.Fetch { at; secs; level } ->
          flush_pending st;
          st.fetch_time <- st.fetch_time +. secs;
          st.fetch_count <- st.fetch_count + 1;
          st.pending <- Some (Pfetch { at; secs; level = clamp_level st level })
      | Scr_log.Rebuild { at; secs; level } -> (
          st.rebuild_time <- st.rebuild_time +. secs;
          st.rebuild_count <- st.rebuild_count + 1;
          let level = clamp_level st level in
          match st.pending with
          | Some (Pfetch f) ->
              (* fetch + rebuild = one restart; an explicit rebuild level
                 overrides the fetch's.  The merge window closes here —
                 "immediately followed" means exactly one rebuild. *)
              let level = match level with Some _ -> level | None -> f.level in
              st.pending <- Some (Pfetch { at = f.at; secs = f.secs +. secs; level });
              flush_pending st
          | _ ->
              flush_pending st;
              st.pending <- Some (Pfetch { at; secs; level }))
      | Scr_log.Compute { at; secs; productive } ->
          flush_pending st;
          st.compute_time <- st.compute_time +. secs;
          st.compute_count <- st.compute_count + 1;
          let productive = Float.min secs (Option.value productive ~default:secs) in
          emit st (Telemetry.Compute { at; duration = secs; productive })
      | Scr_log.Checkpoint { at; secs; level } ->
          flush_pending st;
          let level = Option.value (clamp_level st level) ~default:1 in
          st.pending <- Some (Pckpt { at; secs; level })
      | Scr_log.Flush { at; secs; level; output = false } -> (
          let level = Option.value (clamp_level st level) ~default:(pfs st) in
          match st.pending with
          | Some (Pckpt c) ->
              (* checkpoint + flush = one checkpoint sample at the deeper
                 tier the data finally landed on; one flush per
                 checkpoint, so the sample completes here and a further
                 flush starts a fresh (lone, PFS) sample. *)
              st.pending <-
                Some (Pckpt { at = c.at; secs = c.secs +. secs; level = max c.level level });
              flush_pending st
          | _ ->
              flush_pending st;
              st.pending <- Some (Pckpt { at; secs; level }))
      | Scr_log.Flush { at; secs; output = true; _ } ->
          flush_pending st;
          st.flush_output_time <- st.flush_output_time +. secs;
          st.flush_output_count <- st.flush_output_count + 1;
          emit st (Telemetry.Compute { at; duration = secs; productive = secs })
      | Scr_log.Failure { at; level } ->
          flush_pending st;
          let level = Option.value (clamp_level st level) ~default:(pfs st) in
          st.explicit_failures.(level - 1) <- st.explicit_failures.(level - 1) + 1;
          emit st (Telemetry.Failure { at; level })
      | Scr_log.End { at; complete } ->
          flush_pending st;
          if not complete then st.runs_interrupted <- st.runs_interrupted + 1;
          st.run_open <- false;
          emit st (Telemetry.Run_end { at; completed = complete }));
      st.last_at <- Scr_log.record_at record)
    records;
  flush_pending st;
  let totals =
    { starts = st.starts;
      runs_interrupted = st.runs_interrupted;
      inferred_failures = st.inferred_failures;
      explicit_failures = st.explicit_failures;
      fetch_time = st.fetch_time;
      fetch_count = st.fetch_count;
      rebuild_time = st.rebuild_time;
      rebuild_count = st.rebuild_count;
      restart_time = st.restart_time;
      restart_count = st.restart_count;
      ckpt_time = st.ckpt_time;
      ckpt_count = st.ckpt_count;
      compute_time = st.compute_time;
      compute_count = st.compute_count;
      flush_output_time = st.flush_output_time;
      flush_output_count = st.flush_output_count;
      out_of_range_levels = st.out_of_range }
  in
  { events = List.rev st.events; totals }

let totals_to_json (t : phase_totals) =
  let num v = J.Number v in
  let int v = J.Number (float_of_int v) in
  let ints a = J.List (Array.to_list a |> List.map int) in
  J.Obj
    [ ("starts", int t.starts);
      ("runs_interrupted", int t.runs_interrupted);
      ("inferred_failures", int t.inferred_failures);
      ("explicit_failures", ints t.explicit_failures);
      ("fetch_time", num t.fetch_time);
      ("fetch_count", int t.fetch_count);
      ("rebuild_time", num t.rebuild_time);
      ("rebuild_count", int t.rebuild_count);
      ("restart_time", J.float_array t.restart_time);
      ("restart_count", ints t.restart_count);
      ("ckpt_time", J.float_array t.ckpt_time);
      ("ckpt_count", ints t.ckpt_count);
      ("compute_time", num t.compute_time);
      ("compute_count", int t.compute_count);
      ("flush_output_time", num t.flush_output_time);
      ("flush_output_count", int t.flush_output_count);
      ("out_of_range_levels", int t.out_of_range_levels) ]

let pp_totals ppf (t : phase_totals) =
  let levels = Array.length t.ckpt_count in
  Format.fprintf ppf "@[<v>starts: %d (interrupted %d, inferred failures %d)@ "
    t.starts t.runs_interrupted t.inferred_failures;
  Format.fprintf ppf
    "compute: %.1f s in %d segments (+ %.1f s output flush in %d)@ "
    t.compute_time t.compute_count t.flush_output_time t.flush_output_count;
  Format.fprintf ppf "fetch: %.1f s in %d; rebuild: %.1f s in %d@ " t.fetch_time
    t.fetch_count t.rebuild_time t.rebuild_count;
  for i = 0 to levels - 1 do
    Format.fprintf ppf
      "level %d: %d ckpt (%.1f s), %d restart (%.1f s), %d failures@ " (i + 1)
      t.ckpt_count.(i) t.ckpt_time.(i) t.restart_count.(i) t.restart_time.(i)
      t.explicit_failures.(i)
  done;
  if t.out_of_range_levels > 0 then
    Format.fprintf ppf "out-of-range levels clamped: %d@ " t.out_of_range_levels;
  Format.fprintf ppf "@]"
