module Optimizer = Ckpt_model.Optimizer
module Codec = Ckpt_model.Codec
module Speedup = Ckpt_model.Speedup
module Predict = Ckpt_adaptive.Predict
module J = Ckpt_json.Json

type entry = {
  label : string;
  plan : Optimizer.plan;
  wall_clock : float;
  interval_s : float;
}

type t = { problem : Optimizer.problem; entries : entry list }

let interval_s (problem : Optimizer.problem) (plan : Optimizer.plan) =
  let levels = Array.length plan.Optimizer.xs in
  if levels = 0 then nan
  else
    let productive =
      Speedup.productive_time problem.Optimizer.speedup ~te:problem.Optimizer.te
        ~n:plan.Optimizer.n
    in
    productive /. plan.Optimizer.xs.(levels - 1)

let entry label problem plan =
  let wall_clock =
    Predict.wall_clock problem ~xs:plan.Optimizer.xs ~n:plan.Optimizer.n
  in
  { label; plan; wall_clock; interval_s = interval_s problem plan }

let run ?ml_plan problem =
  let ml = match ml_plan with Some p -> p | None -> Optimizer.solve problem in
  let n = ml.Optimizer.n in
  (* The SL baselines are evaluated on the PFS-only collapse (that is
     the model they plan against) but at the ML plan's scale, so the
     three columns differ only in checkpointing policy. *)
  let sl = Optimizer.single_level_problem problem in
  let young = Optimizer.sl_ori_scale ~n problem in
  let daly = Optimizer.sl_daly_scale ~n problem in
  { problem;
    entries =
      [ entry "young" sl young; entry "daly" sl daly; entry "ml-opt" problem ml ] }

let to_json t =
  let entry_json e =
    let fin v = if Float.is_finite v then J.Number v else J.Null in
    J.Obj
      [ ("label", J.String e.label);
        ("wall_clock_s", fin e.wall_clock);
        ("interval_s", fin e.interval_s);
        ("plan", Codec.plan_to_json e.plan) ]
  in
  J.Obj
    [ ("problem", Codec.problem_to_json t.problem);
      ("plans", J.List (List.map entry_json t.entries)) ]

let pp ppf t =
  let best =
    List.fold_left (fun acc e -> Float.min acc e.wall_clock) infinity t.entries
  in
  Format.fprintf ppf "@[<v>%-8s %12s %12s %10s %8s@ " "plan" "E(Tw) days"
    "interval s" "scale" "vs best";
  List.iter
    (fun e ->
      if Float.is_finite e.wall_clock then
        Format.fprintf ppf "%-8s %12.4f %12.1f %10.0f %+7.1f%%@ " e.label
          (e.wall_clock /. 86400.) e.interval_s e.plan.Optimizer.n
          (if best > 0. then (e.wall_clock /. best -. 1.) *. 100. else nan)
      else
        (* MTBF at this scale is shorter than the policy's interval: the
           re-execution fixed point has no finite solution. *)
        Format.fprintf ppf "%-8s %12s %12.1f %10.0f %8s@ " e.label "diverged"
          e.interval_s e.plan.Optimizer.n "--")
    t.entries;
  Format.fprintf ppf "@]"
