(** Side-by-side Young vs. Daly vs. ML-optimal plans on one problem.

    The single-level baselines optimize a PFS-only collapse of the
    hierarchy; to make the wall clocks commensurable, each plan's
    E(T_w) is re-evaluated as the self-consistent fixed point of its
    {e pinned} intervals and scale ({!Ckpt_adaptive.Predict.wall_clock})
    under the problem it was solved on — the same notion of cost for
    all three columns, so the ML advantage shown is the advantage the
    model actually predicts. *)

type entry = {
  label : string;  (** ["young"], ["daly"], ["ml-opt"] *)
  plan : Ckpt_model.Optimizer.plan;
  wall_clock : float;  (** self-consistent E(T_w) of the pinned plan *)
  interval_s : float;  (** productive seconds between checkpoints at the
                           deepest used level; [nan] if none is used *)
}

type t = { problem : Ckpt_model.Optimizer.problem; entries : entry list }

val run : ?ml_plan:Ckpt_model.Optimizer.plan -> Ckpt_model.Optimizer.problem -> t
(** Solve the three plans on [problem] (reusing [ml_plan] when the
    caller already solved it) at the shared optimized scale of the ML
    plan, so the columns differ only in checkpointing policy. *)

val to_json : t -> Ckpt_json.Json.t
val pp : Format.formatter -> t -> unit
