module Telemetry = Ckpt_adaptive.Telemetry

type record =
  | Start of { at : float; scale : float option; levels : int option }
  | Fetch of { at : float; secs : float; level : int option }
  | Rebuild of { at : float; secs : float; level : int option }
  | Compute of { at : float; secs : float; productive : float option }
  | Checkpoint of { at : float; secs : float; level : int option }
  | Flush of { at : float; secs : float; level : int option; output : bool }
  | Failure of { at : float; level : int option }
  | End of { at : float; complete : bool }

type skip = { line : int; reason : string; text : string }

type t = {
  records : (int * record) list;
  skips : skip list;
  lines : int;
  blank : int;
}

let max_levels = Telemetry.max_levels
let max_skip_text = 120

let is_space = function ' ' | '\t' | '\r' -> true | _ -> false

let is_blank s =
  let n = String.length s in
  let rec all i = i >= n || (is_space s.[i] && all (i + 1)) in
  let rec first i = if i >= n then n else if is_space s.[i] then first (i + 1) else i in
  let f = first 0 in
  all 0 || (f < n && s.[f] = '#')

(* key=value tokens; tokens without '=' are toolkit noise and ignored,
   a repeated key's last value wins. *)
let fields line =
  String.split_on_char ' ' (String.map (fun c -> if is_space c then ' ' else c) line)
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | None | Some 0 -> None
         | Some i ->
             Some
               ( String.lowercase_ascii (String.sub tok 0 i),
                 String.sub tok (i + 1) (String.length tok - i - 1) ))
  |> List.fold_left (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc) []

let ( let* ) = Result.bind

let float_field fs key =
  match List.assoc_opt key fs with
  | None -> Ok None
  | Some raw -> (
      match float_of_string_opt raw with
      | Some v when Float.is_finite v -> Ok (Some v)
      | Some _ -> Error (Printf.sprintf "%s is not finite" key)
      | None -> Error (Printf.sprintf "bad %s %S" key raw))

let required what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing %s" what)

let duration_field ?(key = "secs") fs =
  let* v = float_field fs key in
  let* v = required key v in
  if v < 0. then Error (Printf.sprintf "negative %s" key) else Ok v

let int_field fs key ~lo ~hi =
  match List.assoc_opt key fs with
  | None -> Ok None
  | Some raw -> (
      match int_of_string_opt raw with
      | Some v when v >= lo && v <= hi -> Ok (Some v)
      | Some v -> Error (Printf.sprintf "%s %d out of range [%d..%d]" key v lo hi)
      | None -> Error (Printf.sprintf "bad %s %S" key raw))

let level_field fs = int_field fs "level" ~lo:1 ~hi:max_levels

let bool_field fs key ~default =
  match List.assoc_opt key fs with
  | None -> Ok default
  | Some ("1" | "true") -> Ok true
  | Some ("0" | "false") -> Ok false
  | Some raw -> Error (Printf.sprintf "bad %s %S" key raw)

let parse_line line =
  if is_blank line then Ok None
  else
    let fs = fields line in
    let* at =
      let* t = float_field fs "t" in
      required "t" t
    in
    let* label = required "event" (List.assoc_opt "event" fs) in
    let* record =
      match String.uppercase_ascii label with
      | "START" ->
          let* scale = float_field fs "scale" in
          let* () =
            match scale with
            | Some s when s <= 0. -> Error "scale must be positive"
            | _ -> Ok ()
          in
          let* levels = int_field fs "levels" ~lo:0 ~hi:max_levels in
          Ok (Start { at; scale; levels })
      | "FETCH" ->
          let* secs = duration_field fs in
          let* level = level_field fs in
          Ok (Fetch { at; secs; level })
      | "REBUILD" | "RESTART_SUCCESS" ->
          let* secs = duration_field fs in
          let* level = level_field fs in
          Ok (Rebuild { at; secs; level })
      | "COMPUTE" ->
          let* secs = duration_field fs in
          let* productive = float_field fs "productive" in
          let* () =
            match productive with
            | Some p when p < 0. -> Error "negative productive"
            | Some p when p > secs -> Error "productive exceeds secs"
            | _ -> Ok ()
          in
          Ok (Compute { at; secs; productive })
      | "CHECKPOINT" | "CKPT" ->
          let* secs = duration_field fs in
          let* level = level_field fs in
          Ok (Checkpoint { at; secs; level })
      | "FLUSH" ->
          let* secs = duration_field fs in
          let* level = level_field fs in
          let* output =
            match List.assoc_opt "kind" fs with
            | None | Some "ckpt" -> Ok false
            | Some "output" -> Ok true
            | Some raw -> Error (Printf.sprintf "bad kind %S" raw)
          in
          Ok (Flush { at; secs; level; output })
      | "FAILURE" ->
          let* level = level_field fs in
          Ok (Failure { at; level })
      | "END" ->
          let* complete = bool_field fs "complete" ~default:true in
          Ok (End { at; complete })
      | other -> Error (Printf.sprintf "unknown event %S" other)
    in
    Ok (Some record)

let parse lines =
  let records, skips, blank, total =
    List.fold_left
      (fun (records, skips, blank, n) line ->
        let n = n + 1 in
        match parse_line line with
        | Ok None -> (records, skips, blank + 1, n)
        | Ok (Some r) -> ((n, r) :: records, skips, blank, n)
        | Error reason ->
            let text =
              if String.length line <= max_skip_text then line
              else String.sub line 0 max_skip_text
            in
            (records, { line = n; reason; text } :: skips, blank, n))
      ([], [], 0, 0) lines
  in
  { records = List.rev records; skips = List.rev skips; blank; lines = total }

let parse_string s =
  let lines = String.split_on_char '\n' s in
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  parse lines

let record_at = function
  | Start { at; _ } | Fetch { at; _ } | Rebuild { at; _ } | Compute { at; _ }
  | Checkpoint { at; _ } | Flush { at; _ } | Failure { at; _ } | End { at; _ } ->
      at

let fnum = Printf.sprintf "%.12g"

let to_line r =
  let opt f = function None -> "" | Some v -> f v in
  match r with
  | Start { at; scale; levels } ->
      Printf.sprintf "t=%s event=START%s%s" (fnum at)
        (opt (fun s -> " scale=" ^ fnum s) scale)
        (opt (Printf.sprintf " levels=%d") levels)
  | Fetch { at; secs; level } ->
      Printf.sprintf "t=%s event=FETCH secs=%s%s" (fnum at) (fnum secs)
        (opt (Printf.sprintf " level=%d") level)
  | Rebuild { at; secs; level } ->
      Printf.sprintf "t=%s event=REBUILD secs=%s%s" (fnum at) (fnum secs)
        (opt (Printf.sprintf " level=%d") level)
  | Compute { at; secs; productive } ->
      Printf.sprintf "t=%s event=COMPUTE secs=%s%s" (fnum at) (fnum secs)
        (opt (fun p -> " productive=" ^ fnum p) productive)
  | Checkpoint { at; secs; level } ->
      Printf.sprintf "t=%s event=CHECKPOINT secs=%s%s" (fnum at) (fnum secs)
        (opt (Printf.sprintf " level=%d") level)
  | Flush { at; secs; level; output } ->
      Printf.sprintf "t=%s event=FLUSH secs=%s kind=%s%s" (fnum at) (fnum secs)
        (if output then "output" else "ckpt")
        (opt (Printf.sprintf " level=%d") level)
  | Failure { at; level } ->
      Printf.sprintf "t=%s event=FAILURE%s" (fnum at)
        (opt (Printf.sprintf " level=%d") level)
  | End { at; complete } ->
      Printf.sprintf "t=%s event=END complete=%d" (fnum at)
        (if complete then 1 else 0)

let infer_pfs events =
  let last_start_levels =
    List.fold_left
      (fun acc ev ->
        match ev with Telemetry.Run_start { levels; _ } -> Some levels | _ -> acc)
      None events
  in
  match last_start_levels with
  | Some l when l > 0 -> l
  | _ ->
      List.fold_left
        (fun acc ev ->
          match ev with
          | Telemetry.Ckpt { level; _ }
          | Telemetry.Restart { level; _ }
          | Telemetry.Failure { level; _ } ->
              max acc level
          | _ -> acc)
        0 events

let of_telemetry ?pfs_level events =
  let pfs = match pfs_level with Some l -> l | None -> infer_pfs events in
  List.concat_map
    (fun ev ->
      match ev with
      | Telemetry.Run_start { at; scale; levels } ->
          [ Start { at; scale = Some scale; levels = Some levels } ]
      | Telemetry.Compute { at; duration; productive } ->
          [ Compute { at; secs = duration; productive = Some productive } ]
      | Telemetry.Ckpt { at; level; duration } when level = pfs ->
          (* A deep checkpoint is a local write plus a drain to slower
             storage; the accountant re-merges the pair. *)
          [ Checkpoint { at; secs = duration *. 0.6; level = Some level };
            Flush { at; secs = duration *. 0.4; level = None; output = false } ]
      | Telemetry.Ckpt { at; level; duration } ->
          [ Checkpoint { at; secs = duration; level = Some level } ]
      | Telemetry.Restart { at; level; duration } when level = pfs ->
          [ Fetch { at; secs = duration *. 0.6; level = Some level };
            Rebuild { at; secs = duration *. 0.4; level = None } ]
      | Telemetry.Restart { at; level; duration } ->
          [ Fetch { at; secs = duration; level = Some level } ]
      | Telemetry.Failure { at; level } -> [ Failure { at; level = Some level } ]
      | Telemetry.Run_end { at; completed } -> [ End { at; complete = completed } ])
    events
  |> List.map to_line

let pp_skip ppf { line; reason; text } =
  Format.fprintf ppf "line %d: %s (%S)" line reason text
