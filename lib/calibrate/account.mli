(** Phase accounting: fold parsed {!Scr_log.record}s into telemetry
    events and per-phase totals, in the style of SCR's log walkers.

    The rules (documented in [lib/calibrate/README.md]):

    - A [FETCH] immediately followed by a [REBUILD] merges into one
      restart-cost sample (durations summed, the fetch's level kept;
      a rebuild's explicit level wins when it carries one).  A lone
      [FETCH] or [REBUILD] is a restart sample by itself.  The default
      restart level is the PFS (the hierarchy's last level).
    - A [CHECKPOINT] immediately followed by a checkpoint-kind [FLUSH]
      merges into one checkpoint-cost sample (durations summed, level =
      the deeper of the two; a flush without a level means the PFS).
      A lone flush is a PFS checkpoint sample.  The default checkpoint
      level is 1 (a local write).
    - [FLUSH kind=output] counts toward compute time (the job is making
      progress while draining results), never checkpoint cost.
    - The stream is {e multi-run aware}: a [START] while a previous run
      is still open marks an uncontrolled interruption — the accountant
      emits a synthetic [Failure] (at the level of the new run's first
      [FETCH], the storage tier the restart actually read, else the PFS)
      plus an incomplete [Run_end] at the dead run's last timestamp, so
      failure-interarrival exposure never accrues across downtime.
    - Level indices outside the configured hierarchy are clamped to the
      nearest bound and counted in [out_of_range_levels]; records are
      processed in input order (the estimators clamp time regressions),
      so out-of-order timestamps cannot raise. *)

type config = {
  levels : int;  (** hierarchy size; must be >= 1 *)
  default_scale : float;  (** scale assumed before any [START] carries one *)
}

val config : ?default_scale:float -> levels:int -> unit -> config
(** [default_scale] defaults to [1.].
    @raise Invalid_argument when [levels < 1] or [default_scale <= 0]. *)

type phase_totals = {
  starts : int;  (** [START] records seen *)
  runs_interrupted : int;  (** runs closed by inference or [complete=0] *)
  inferred_failures : int;  (** synthetic failures from back-to-back starts *)
  explicit_failures : int array;  (** per level, from [FAILURE] records *)
  fetch_time : float;
  fetch_count : int;
  rebuild_time : float;
  rebuild_count : int;
  restart_time : float array;  (** per level, merged fetch+rebuild *)
  restart_count : int array;
  ckpt_time : float array;  (** per level, merged checkpoint+flush *)
  ckpt_count : int array;
  compute_time : float;
  compute_count : int;
  flush_output_time : float;
  flush_output_count : int;
  out_of_range_levels : int;
}

type t = {
  events : Ckpt_adaptive.Telemetry.event list;
      (** ready for {!Ckpt_adaptive.Rate_estimator} / {!Cost_estimator} *)
  totals : phase_totals;
}

val run : config -> (int * Scr_log.record) list -> t
(** Total: any record sequence accounts without raising. *)

val totals_to_json : phase_totals -> Ckpt_json.Json.t
val pp_totals : Format.formatter -> phase_totals -> unit
