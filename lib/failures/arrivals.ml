module Rng = Ckpt_numerics.Rng
module Dist = Ckpt_numerics.Dist
module Special = Ckpt_numerics.Special
module Draw_buffer = Ckpt_fastpath.Draw_buffer

type law = Exponential | Weibull of { shape : float }

(* Each level's inter-arrival draws come from its own substream, either
   through a refillable batch buffer (the default — the buffer owns the
   substream and pre-draws blocks) or one at a time.  Both produce the
   identical draw sequence: the substream is private to the level, so
   drawing ahead cannot interleave with anything. *)
type source =
  | Buffered of Draw_buffer.t
  | Direct of { rng : Rng.t; law : law; weibull_scale : float }

type event = { at : float; level : int }

type t = {
  rates : float array;  (* mean events per second, per level *)
  sources : source array;
  next : float array;  (* absolute time of each level's next arrival *)
  total : float;
}

let gap t i =
  match t.sources.(i) with
  | Buffered b -> Draw_buffer.next b
  | Direct { rng; law; weibull_scale } -> (
      match law with
      | Exponential -> Dist.exponential rng ~rate:t.rates.(i)
      | Weibull { shape } -> Dist.weibull rng ~shape ~scale:weibull_scale)

let create ?laws ?(batched = true) ~rng ~spec ~scale () =
  let levels = Failure_spec.levels spec in
  let laws =
    match laws with
    | None -> Array.make levels Exponential
    | Some laws ->
        if Array.length laws <> levels then
          invalid_arg "Arrivals.create: one law per level required";
        Array.iter
          (function
            | Exponential -> ()
            | Weibull { shape } ->
                if shape <= 0. then invalid_arg "Arrivals.create: Weibull shape <= 0")
          laws;
        laws
  in
  let rates = Array.make levels 0. in
  let next = Array.make levels infinity in
  (* Split the parent stream per level in index order — the substream
     contract shared with [Rng.streams] consumers. *)
  let sources =
    Array.init levels (fun i ->
        let rate = Failure_spec.rate_per_second spec ~level:(i + 1) ~scale in
        rates.(i) <- rate;
        let weibull_scale =
          match laws.(i) with
          | Exponential -> 0.
          | Weibull { shape } ->
              if rate <= 0. then 0.
              else 1. /. (rate *. Special.gamma (1. +. (1. /. shape)))
        in
        let child = Rng.split rng in
        if batched && rate > 0. then
          Buffered
            (Draw_buffer.create ~rng:child
               (match laws.(i) with
               | Exponential -> Draw_buffer.Exponential { rate }
               | Weibull { shape } ->
                   Draw_buffer.Weibull { shape; scale = weibull_scale }))
        else Direct { rng = child; law = laws.(i); weibull_scale })
  in
  let t = { rates; sources; next; total = Array.fold_left ( +. ) 0. rates } in
  for i = 0 to levels - 1 do
    if rates.(i) > 0. then next.(i) <- gap t i
  done;
  t

let total_rate t = t.total

let next_after t now =
  if t.total <= 0. then None
  else begin
    let levels = Array.length t.rates in
    (* Advance every level past [now], then take the earliest. *)
    for i = 0 to levels - 1 do
      if t.rates.(i) > 0. then
        while t.next.(i) <= now do
          t.next.(i) <- t.next.(i) +. gap t i
        done
    done;
    let best = ref (-1) in
    for i = 0 to levels - 1 do
      if t.rates.(i) > 0. && (!best < 0 || t.next.(i) < t.next.(!best)) then best := i
    done;
    let b = !best in
    let at = t.next.(b) in
    t.next.(b) <- at +. gap t b;
    Some { at; level = b + 1 }
  end

let sequence t ~horizon =
  let rec loop now acc =
    match next_after t now with
    | None -> List.rev acc
    | Some ev -> if ev.at >= horizon then List.rev acc else loop ev.at (ev :: acc)
  in
  loop 0. []
