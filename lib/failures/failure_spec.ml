type t = { rates_per_day : float array; baseline_scale : float }

let seconds_per_day = 86_400.

let v ?(baseline_scale = 1e6) rates_per_day =
  if Array.length rates_per_day = 0 then invalid_arg "Failure_spec.v: no levels";
  Array.iter
    (fun r ->
      if not (Float.is_finite r && r >= 0.) then
        invalid_arg (Printf.sprintf "Failure_spec.v: rate %g must be finite and >= 0" r))
    rates_per_day;
  if not (Float.is_finite baseline_scale && baseline_scale > 0.) then
    invalid_arg "Failure_spec.v: baseline_scale must be finite and positive";
  { rates_per_day; baseline_scale }

let of_string ?baseline_scale s =
  let parts = String.split_on_char '-' s in
  if parts = [] then invalid_arg "Failure_spec.of_string: empty";
  let rates =
    List.map
      (fun p ->
        match float_of_string_opt (String.trim p) with
        | Some r when r >= 0. -> r
        | _ -> invalid_arg (Printf.sprintf "Failure_spec.of_string: bad rate %S in %S" p s))
      parts
  in
  v ?baseline_scale (Array.of_list rates)

let to_string t =
  String.concat "-"
    (Array.to_list (Array.map (fun r -> Printf.sprintf "%g" r) t.rates_per_day))

let levels t = Array.length t.rates_per_day

let with_baseline t ~baseline_scale =
  assert (baseline_scale > 0.);
  (* lambda_i(N) is invariant: r_i / N_b stays fixed. *)
  let factor = baseline_scale /. t.baseline_scale in
  { rates_per_day = Array.map (fun r -> r *. factor) t.rates_per_day; baseline_scale }

let rate_per_second t ~level ~scale =
  assert (level >= 1 && level <= levels t);
  assert (scale >= 0.);
  t.rates_per_day.(level - 1) /. seconds_per_day *. scale /. t.baseline_scale

let rate_per_second' t ~level =
  assert (level >= 1 && level <= levels t);
  t.rates_per_day.(level - 1) /. seconds_per_day /. t.baseline_scale

let total_rate_per_second t ~scale =
  let total = Array.fold_left ( +. ) 0. t.rates_per_day in
  total /. seconds_per_day *. scale /. t.baseline_scale

let total_rate_per_second' t =
  let total = Array.fold_left ( +. ) 0. t.rates_per_day in
  total /. seconds_per_day /. t.baseline_scale

let expected_failures t ~level ~scale ~duration =
  assert (duration >= 0.);
  rate_per_second t ~level ~scale *. duration

let paper_cases =
  List.map of_string
    [ "16-12-8-4"; "8-6-4-2"; "4-3-2-1"; "16-8-4-2"; "8-4-2-1"; "4-2-1-0.5" ]

let pp ppf t =
  Format.fprintf ppf "%s @ N_b=%g" (to_string t) t.baseline_scale
