(** Per-level failure-rate specifications.

    The paper (Section IV-A) parameterizes each experiment with a rate
    vector ["r1-r2-r3-r4"]: [r_i] failure events per day at checkpoint
    level [i], measured at the baseline scale [N_b].  The rate experienced
    at execution scale [N] grows proportionally:
    [lambda_i(N) = r_i / 86400 * N / N_b]  (per second). *)

type t = {
  rates_per_day : float array;  (** [r_i], indexed by level - 1; all >= 0 *)
  baseline_scale : float;  (** [N_b], the scale the rates were measured at *)
}

val seconds_per_day : float

val v : ?baseline_scale:float -> float array -> t
(** [v rates] builds a spec; [baseline_scale] defaults to 1e6 cores
    ([N_star] in the paper's evaluation). *)

val of_string : ?baseline_scale:float -> string -> t
(** [of_string "16-12-8-4"] parses the paper's dash notation.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Inverse of {!of_string} (rates printed compactly). *)

val levels : t -> int

val with_baseline : t -> baseline_scale:float -> t
(** Re-express the same rate law at another baseline scale: the per-day
    rates are rescaled so that [rate_per_second] is unchanged at every
    execution scale.  Used to compare specs fitted from telemetry against
    priors quoted at a different [N_b]. *)

val rate_per_second : t -> level:int -> scale:float -> float
(** [rate_per_second t ~level ~scale] is [lambda_level(scale)] in events
    per second.  [level] is 1-based. *)

val rate_per_second' : t -> level:int -> float
(** Derivative of {!rate_per_second} with respect to [scale]; the rates are
    linear in the scale so this is a constant in [scale]. *)

val total_rate_per_second : t -> scale:float -> float
(** Sum over levels — the failure rate a single-level model must absorb,
    since a PFS-only scheme recovers every failure from the PFS copy. *)

val total_rate_per_second' : t -> float
(** Derivative of {!total_rate_per_second} with respect to [scale]. *)

val expected_failures : t -> level:int -> scale:float -> duration:float -> float
(** [expected_failures t ~level ~scale ~duration] is
    [lambda_level(scale) * duration] — the [mu_i] initialization of the
    paper's Algorithm 1 (line 2). *)

(** The six rate vectors evaluated in the paper (Figs. 5–7, Tables III/IV). *)
val paper_cases : t list

val pp : Format.formatter -> t -> unit
