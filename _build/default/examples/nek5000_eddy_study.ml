(* Optimizing a communication-bound application whose speedup peaks early.

   Run with:  dune exec examples/nek5000_eddy_study.exe

   The Nek5000 eddy_uv monitor (paper Fig. 2(b)) stops scaling around 100
   cores.  The paper's point: fit the quadratic only on the ascending
   range — the optimum under failures can never exceed the failure-free
   peak — and optimize within it. *)

open Ckpt_model
module Study = Ckpt_mpi.Speedup_study

let () =
  let machine = Ckpt_mpi.Machine.default in
  let points =
    Study.measure ~machine
      ~program:(fun ~ranks -> Ckpt_mpi.Nek_eddy.program ~ranks ())
      ~scales:[ 2; 4; 8; 16; 25; 36; 50; 64; 100; 128; 200; 256; 400 ]
  in
  Format.printf "Measured speedups (Nek5000 eddy_uv-like):@.";
  List.iter
    (fun p -> Format.printf "  %4d ranks: %6.2f@." p.Study.ranks p.Study.speedup)
    points;
  let ascending = Study.ascending_range points in
  let fit = Study.fit_quadratic ascending in
  Format.printf
    "Quadratic fit on the ascending range (%d points): kappa=%.3f, N_star=%.0f@.@."
    fit.Study.points_used fit.Study.kappa fit.Study.n_star;

  (* A long campaign of eddy simulations on a small, failure-prone
     partition: 500 core-days, a couple of failures per day. *)
  let speedup = Speedup.quadratic ~kappa:fit.Study.kappa ~n_star:fit.Study.n_star in
  let problem =
    { Optimizer.te = 500. *. 86_400.;
      speedup;
      levels = Level.fti_fusion;
      alloc = 30.;
      spec =
        Ckpt_failures.Failure_spec.of_string ~baseline_scale:fit.Study.n_star
          "2-1-0.5-0.25" }
  in
  let plan = Optimizer.ml_opt_scale problem in
  Format.printf "Optimized campaign plan:@\n%a@.@." Optimizer.pp_plan plan;
  Format.printf
    "Note how N* = %.0f stays below the failure-free peak of %.0f cores.@."
    plan.Optimizer.n fit.Study.n_star
