(* A day in the life of a checkpointed cluster.

   Run with:  dune exec examples/failure_timeline.exe

   Drives the discrete-event kernel directly: failure events arrive from
   the renewal generator, the crash model decides which nodes die, the
   topology classifies the damage into a recovery level, and periodic
   checkpoint events tick alongside — producing a timed incident log like
   an operator would read.  This is the mechanism-level view underneath
   the aggregate simulator of `ckpt_sim`. *)

module Sim = Ckpt_simkernel.Sim
module Trace = Ckpt_simkernel.Trace
module Topology = Ckpt_topology.Topology
module Arrivals = Ckpt_failures.Arrivals
module Crash_model = Ckpt_failures.Crash_model
module Failure_spec = Ckpt_failures.Failure_spec
module Rng = Ckpt_numerics.Rng

let day = 86_400.

let () =
  let rng = Rng.of_int 2014 in
  let topology = Topology.create Topology.default_spec in
  let trace = Trace.create () in
  let sim = Sim.create () in

  (* Failures: a lively test cluster - 24 events/day across the levels. *)
  let spec = Failure_spec.of_string ~baseline_scale:1024. "12-6-4-2" in
  let arrivals = Arrivals.create ~rng:(Rng.split rng) ~spec ~scale:1024. () in
  let crash_model = Crash_model.create ~rng:(Rng.split rng) ~topology () in

  (* Periodic checkpoints: level 1 hourly, level 4 every 8 hours. *)
  let rec schedule_ckpt level period sim =
    ignore
      (Sim.schedule_after sim ~delay:period (fun sim ->
           Trace.recordf trace ~time:(Sim.now sim) ~tag:"checkpoint" "level %d written"
             level;
           schedule_ckpt level period sim))
  in
  schedule_ckpt 1 3_600. sim;
  schedule_ckpt 4 (8. *. 3_600.) sim;

  (* Failure process: each event crashes concrete nodes; the topology
     decides which checkpoint level can recover. *)
  let rec schedule_next_failure sim =
    match Arrivals.next_after arrivals (Sim.now sim) with
    | None -> ()
    | Some ev ->
        ignore
          (Sim.schedule_at sim ~time:ev.Arrivals.at (fun sim ->
               let kind, failed, level = Crash_model.sample crash_model in
               let kind_name =
                 match kind with
                 | Crash_model.Software -> "software error"
                 | Crash_model.Single_node -> "node crash"
                 | Crash_model.Board -> "board failure"
                 | Crash_model.Multi k -> Printf.sprintf "%d correlated crashes" k
               in
               Trace.recordf trace ~time:(Sim.now sim) ~tag:"failure"
                 "%s%s -> recover from level %d" kind_name
                 (match failed with
                  | [] -> ""
                  | nodes ->
                      Printf.sprintf " (nodes %s)"
                        (String.concat "," (List.map string_of_int nodes)))
                 level;
               schedule_next_failure sim))
  in
  schedule_next_failure sim;

  Sim.run ~until:day sim;

  Format.printf "Incident log for one simulated day (%d events):@.@." (Trace.length trace);
  Format.printf "%a@." Trace.pp trace;
  let failures = List.length (Trace.find_all trace ~tag:"failure") in
  let ckpts = List.length (Trace.find_all trace ~tag:"checkpoint") in
  Format.printf "summary: %d failures, %d checkpoints written@." failures ckpts
