(* Capacity planning with the multilevel checkpoint model.

   Run with:  dune exec examples/capacity_planning.exe

   A system operator's view of the paper's result: across workload sizes
   and failure intensities, how many of the million available cores
   should a job actually be given?  Fewer cores than the machine offers
   are often faster AND free capacity for other users (the paper's
   "improves system availability by 6-16%" observation). *)

open Ckpt_model

let optimize ~te_core_days ~case =
  let problem =
    { Optimizer.te = te_core_days *. 86_400.;
      speedup = Speedup.quadratic ~kappa:0.46 ~n_star:1e6;
      levels = Level.fti_fusion;
      alloc = 60.;
      spec = Ckpt_failures.Failure_spec.of_string ~baseline_scale:1e6 case }
  in
  Optimizer.ml_opt_scale problem

let () =
  let workloads = [ 1e5; 1e6; 3e6; 1e7 ] in
  let cases = [ "16-12-8-4"; "8-6-4-2"; "4-3-2-1" ] in
  Format.printf "Optimal core allocation (out of 1m) and wall-clock:@.@.";
  Format.printf "%14s" "Te (core-days)";
  List.iter (fun c -> Format.printf "  %-22s" c) cases;
  Format.printf "@.";
  List.iter
    (fun te ->
      Format.printf "%14.0e" te;
      List.iter
        (fun case ->
          let plan = optimize ~te_core_days:te ~case in
          Format.printf "  %5.0fk cores %6.1f d  " (plan.Optimizer.n /. 1e3)
            (plan.Optimizer.wall_clock /. 86_400.))
        cases;
      Format.printf "@.")
    workloads;
  Format.printf
    "@.Reading: higher failure rates or heavier PFS traffic push the optimum@.\
     to fewer cores; freed cores are available to other jobs.@."
