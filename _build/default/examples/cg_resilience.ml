(* Bit-exact fault tolerance for an iterative solver.

   Run with:  dune exec examples/cg_resilience.exe

   An ensemble of conjugate-gradient solves (one 2-D Poisson system per
   node, different right-hand sides - a typical parameter sweep) runs
   under the FTI executor with a multilevel checkpoint cadence.  Nodes
   crash mid-solve; the runtime recovers from partner copies or
   Reed-Solomon decoding, re-executes the lost iterations, and the final
   states are verified to be bit-for-bit identical to a crash-free run -
   checkpoint/restart does not perturb the numerics at all. *)

module Topology = Ckpt_topology.Topology
module Executor = Ckpt_fti.Executor
module Sparse = Ckpt_numerics.Sparse
module Cg = Ckpt_numerics.Cg

let grid = 16 (* 256 unknowns per system *)

let matrix = Sparse.poisson_2d ~n:grid

let rhs node =
  Array.init (Sparse.rows matrix) (fun i ->
      1. +. sin (float_of_int ((node * 37) + i)))

let app =
  { Executor.init = (fun node -> Cg.init ~a:matrix ~b:(rhs node) ());
    step = (fun ~iteration:_ ~node:_ s -> Cg.step ~a:matrix s);
    serialize = Cg.serialize;
    deserialize = Cg.deserialize }

let () =
  let topology =
    Topology.create
      { Topology.nodes = 16; cores_per_node = 8; board_size = 4; rs_group_size = 8;
        rs_parity = 2 }
  in
  let iterations = 60 in

  Format.printf "Ensemble: %d independent CG solves (%d unknowns each), %d iterations@.@."
    (Topology.node_count topology) (Sparse.rows matrix) iterations;

  (* Reference: no failures, no checkpoint machinery. *)
  let reference = Executor.run_crash_free ~topology app ~iterations in

  (* Faulty run: three crash events, including a node+partner pair that
     forces Reed-Solomon decoding. *)
  let partner = Topology.partner_of topology 5 in
  let crashes = [ (17, [ 2 ]); (33, [ 5; partner ]); (49, [ 11; 12; 13 ]) ] in
  let result, stats =
    Executor.run ~topology app ~iterations ~schedule:Executor.fti_cadence ~crashes
  in

  Format.printf "crashes injected: %d@." stats.Executor.crashes_injected;
  List.iter
    (fun (resumed, level) ->
      Format.printf "  recovered to iteration %d via level %d@." resumed level)
    stats.Executor.recoveries;
  Format.printf "iterations re-executed: %d@.@." stats.Executor.reexecuted_iterations;

  let exact =
    Array.for_all2 (fun a b -> Cg.equal a b) reference result
  in
  Format.printf "final states bit-for-bit identical to crash-free run: %b@." exact;

  (* And the solves actually solved something. *)
  let worst =
    Array.fold_left (fun acc s -> Float.max acc (Cg.residual_norm s)) 0. result
  in
  Format.printf "worst residual across the ensemble after %d iterations: %.3e@."
    iterations worst;
  if not exact then exit 1
