(* End-to-end study of the paper's flagship application.

   Run with:  dune exec examples/heat_distribution_study.exe

   Pipeline, exactly as the paper prescribes:
   1. measure the Heat Distribution speedup by running the emulated MPI
      program across scales (paper Fig. 2(a));
   2. fit the Eq. (12) quadratic through the origin to get kappa;
   3. feed the fitted speedup into Algorithm 1 with the FTI overhead
      characterization (Table II) to optimize intervals and scale;
   4. sanity-check the resulting plan in the simulator. *)

open Ckpt_model
module Study = Ckpt_mpi.Speedup_study

let () =
  (* 1. Measure speedups on the emulated cluster. *)
  let machine = Ckpt_mpi.Machine.default in
  let points =
    Study.measure ~machine
      ~program:(fun ~ranks -> Ckpt_mpi.Heat.program ~ranks ())
      ~scales:[ 2; 4; 8; 16; 32; 64; 128; 160; 256; 512; 1024 ]
  in
  Format.printf "Measured speedups (Heat Distribution, strong scaling):@.";
  List.iter
    (fun p -> Format.printf "  %4d ranks: %7.2f@." p.Study.ranks p.Study.speedup)
    points;

  (* 2. Fit the quadratic speedup law. *)
  let fit = Study.fit_quadratic (Study.ascending_range points) in
  Format.printf "Fitted kappa = %.3f (paper: 0.46), r^2 = %.4f@.@." fit.Study.kappa
    fit.Study.r_squared;

  (* 3. Optimize a production run.  The emulator only covers 1,024 ranks;
        as in the paper we keep the fitted kappa and posit the production
        machine's peak at one million cores. *)
  let speedup = Speedup.quadratic ~kappa:fit.Study.kappa ~n_star:1e6 in
  let problem =
    { Optimizer.te = 3e6 *. 86_400.;
      speedup;
      levels = Level.fti_fusion;
      alloc = 60.;
      spec = Ckpt_failures.Failure_spec.of_string ~baseline_scale:1e6 "16-12-8-4" }
  in
  let plan = Optimizer.ml_opt_scale problem in
  Format.printf "Production plan (3m core-days, 16-12-8-4 failures/day):@\n%a@.@."
    Optimizer.pp_plan plan;

  (* 4. Simulate. *)
  let config =
    Ckpt_sim.Run_config.of_plan ~semantics:Ckpt_sim.Run_config.paper_semantics ~problem
      ~plan ()
  in
  let agg = Ckpt_sim.Replication.run ~runs:20 config in
  Format.printf "Simulated: %a@." Ckpt_sim.Replication.pp agg
