(* Quickstart: optimize a multilevel checkpoint plan and simulate it.

   Run with:  dune exec examples/quickstart.exe

   Scenario: an application with 100,000 core-days of work on a machine
   whose speedup peaks at 200,000 cores, protected by the four FTI levels
   characterized in the paper (Table II), under moderate failure rates. *)

open Ckpt_model

let () =
  (* 1. Describe the application and platform. *)
  let problem =
    { Optimizer.te = 100_000. *. 86_400.;  (* core-days -> core-seconds *)
      speedup = Speedup.quadratic ~kappa:0.46 ~n_star:200_000.;
      levels = Level.fti_fusion;
      alloc = 60.;  (* node re-allocation takes a minute *)
      spec = Ckpt_failures.Failure_spec.of_string ~baseline_scale:200_000. "8-4-2-1" }
  in

  (* 2. Run the paper's Algorithm 1: optimal intervals per level AND the
        optimal number of cores, simultaneously. *)
  let plan = Optimizer.ml_opt_scale problem in
  Format.printf "Optimized plan:@\n%a@\n@." Optimizer.pp_plan plan;

  (* 3. Check the advice against the naive alternatives. *)
  let young = Optimizer.sl_ori_scale problem in
  Format.printf "Classic Young (PFS only, all cores): E(Tw) = %.1f days@."
    (young.Optimizer.wall_clock /. 86_400.);
  Format.printf "This paper's plan:                   E(Tw) = %.1f days@.@."
    (plan.Optimizer.wall_clock /. 86_400.);

  (* 4. Validate the prediction by discrete-event simulation (20 runs with
        random exponential failures, 30%% cost jitter). *)
  let config = Ckpt_sim.Run_config.of_plan ~problem ~plan () in
  let agg = Ckpt_sim.Replication.run ~runs:20 config in
  Format.printf "Simulated (20 runs): %a@." Ckpt_sim.Replication.pp agg
