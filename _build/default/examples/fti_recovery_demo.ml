(* End-to-end multilevel checkpoint/recovery of a real computation.

   Run with:  dune exec examples/fti_recovery_demo.exe

   A genuine Jacobi heat solver iterates over a float grid; the FTI-style
   runtime checkpoints its serialized state across a 32-node cluster at
   increasing levels.  We then crash nodes in the three damage patterns
   the levels are designed for — single node, adjacent board, scattered
   multi-node — and watch the recovery protocol pick the cheapest level
   that still works, falling back to Reed-Solomon decoding and finally to
   the PFS. *)

module Topology = Ckpt_topology.Topology
module Runtime = Ckpt_fti.Runtime
module Jacobi = Ckpt_mpi.Heat.Jacobi

let spec =
  { Topology.nodes = 32; cores_per_node = 8; board_size = 4; rs_group_size = 8;
    rs_parity = 2 }

(* Each node owns a private grid slice; here every node evolves its own
   small grid so recovered state can be checked cell-for-cell. *)
let make_state seed =
  let g = Jacobi.create ~size:24 in
  Jacobi.set g 12 12 (100. +. float_of_int seed);
  Jacobi.set g 4 (4 + (seed mod 8)) 57.;
  ignore (Jacobi.run g ~iterations:10);
  g

let () =
  let topology = Topology.create spec in
  let fti = Runtime.create ~topology () in
  let grids = Array.init spec.Topology.nodes make_state in
  let payload node = Jacobi.serialize grids.(node) in

  Format.printf "cluster: %a@.@." Topology.pp topology;

  (* Take four checkpoints, one per level, advancing the solver between
     them (ids also encode how many iterations ran). *)
  for level = 1 to 4 do
    Array.iter (fun g -> ignore (Jacobi.run g ~iterations:5)) grids;
    Runtime.checkpoint fti ~ckpt_id:level ~level ~data:payload;
    Format.printf "checkpoint %d written at level %d@." level level
  done;
  let reference = Array.map (fun g -> Jacobi.serialize g) grids in

  let verify label expected_level =
    match Runtime.recover fti with
    | None -> Format.printf "%s: UNRECOVERABLE@." label
    | Some r ->
        let intact =
          Array.for_all
            (fun node -> Bytes.equal (r.Runtime.data node) reference.(node))
            (Array.init spec.Topology.nodes (fun i -> i))
        in
        Format.printf "%s: recovered ckpt %d via level %d (expected %d), state intact: %b@."
          label r.Runtime.ckpt_id r.Runtime.level_used expected_level intact
  in

  (* Damage pattern 1: one node dies -> its partner copy suffices. *)
  Runtime.crash_nodes fti [ 5 ];
  verify "single-node crash         " 2;

  (* Re-write the partner level for the next scenario. *)
  Runtime.checkpoint fti ~ckpt_id:5 ~level:4 ~data:payload;

  (* Damage pattern 2: a whole board (nodes 8-11) dies.  Partners live one
     board away, so partner copies survive. *)
  Runtime.crash_nodes fti [ 8; 9; 10; 11 ];
  verify "board crash (4 adjacent)  " 2;

  Runtime.checkpoint fti ~ckpt_id:6 ~level:4 ~data:payload;

  (* Damage pattern 3: a node AND its partner die -> partner copy gone,
     Reed-Solomon decoding takes over (2 losses within one group). *)
  let victim = 16 in
  let partner = Topology.partner_of topology victim in
  Runtime.crash_nodes fti [ victim; partner ];
  verify "node + its partner        " 3;

  Runtime.checkpoint fti ~ckpt_id:7 ~level:4 ~data:payload;

  (* Damage pattern 4: three nodes of one RS group AND their partners ->
     partner copies gone too, losses exceed the RS parity, only the PFS
     copy can serve. *)
  Runtime.crash_nodes fti [ 0; 1; 2; 4; 5; 6 ];
  verify "RS group + partners       " 4;

  (* Finally continue computing from the recovered state. *)
  match Runtime.recover fti with
  | None -> assert false
  | Some r ->
      let g = Jacobi.deserialize (r.Runtime.data 0) in
      let residual = Jacobi.run g ~iterations:5 in
      Format.printf "@.resumed node 0 from checkpoint %d and iterated on: residual %.2e@."
        r.Runtime.ckpt_id residual
