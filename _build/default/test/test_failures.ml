(* Tests for failure specifications, arrivals and the crash model. *)

module Failure_spec = Ckpt_failures.Failure_spec
module Arrivals = Ckpt_failures.Arrivals
module Crash_model = Ckpt_failures.Crash_model
module Rng = Ckpt_numerics.Rng
module Stats = Ckpt_numerics.Stats
module Topology = Ckpt_topology.Topology

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* ---------------- Failure_spec ---------------- *)

let test_parse_roundtrip () =
  let s = Failure_spec.of_string "16-12-8-4" in
  Alcotest.(check int) "levels" 4 (Failure_spec.levels s);
  Alcotest.(check string) "roundtrip" "16-12-8-4" (Failure_spec.to_string s)

let test_parse_fractional () =
  let s = Failure_spec.of_string "4-2-1-0.5" in
  check_close "fractional rate" 0.5 s.Failure_spec.rates_per_day.(3)

let test_parse_invalid () =
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Failure_spec.of_string "1--2");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Failure_spec.of_string "a-b");
       false
     with Invalid_argument _ -> true)

let test_rate_scaling () =
  let s = Failure_spec.of_string ~baseline_scale:1e6 "16-12-8-4" in
  (* At the baseline scale, level 1 sees 16 failures per day. *)
  check_close "rate at baseline"
    (16. /. 86_400.)
    (Failure_spec.rate_per_second s ~level:1 ~scale:1e6);
  (* Rates are proportional to the scale. *)
  check_close "half scale halves the rate"
    (8. /. 86_400.)
    (Failure_spec.rate_per_second s ~level:1 ~scale:5e5);
  check_close "derivative matches slope"
    (16. /. 86_400. /. 1e6)
    (Failure_spec.rate_per_second' s ~level:1)

let test_total_rate () =
  let s = Failure_spec.of_string ~baseline_scale:1e6 "16-12-8-4" in
  check_close "total = 40/day" (40. /. 86_400.)
    (Failure_spec.total_rate_per_second s ~scale:1e6);
  check_close "total derivative" (40. /. 86_400. /. 1e6)
    (Failure_spec.total_rate_per_second' s)

let test_expected_failures () =
  let s = Failure_spec.of_string ~baseline_scale:1e6 "16-12-8-4" in
  check_close "one day at baseline" 16.
    (Failure_spec.expected_failures s ~level:1 ~scale:1e6 ~duration:86_400.)

let test_paper_cases () =
  Alcotest.(check int) "six cases" 6 (List.length Failure_spec.paper_cases);
  List.iter
    (fun c -> Alcotest.(check int) "four levels" 4 (Failure_spec.levels c))
    Failure_spec.paper_cases

(* ---------------- Arrivals ---------------- *)

let test_arrivals_merged_rate () =
  let spec = Failure_spec.of_string ~baseline_scale:1e3 "10-10-10-10" in
  let rng = Rng.of_int 1 in
  let a = Arrivals.create ~rng ~spec ~scale:1e3 () in
  check_close "total rate" (40. /. 86_400.) (Arrivals.total_rate a);
  (* Mean inter-arrival time ~ 1/rate. *)
  let gaps = ref [] in
  let now = ref 0. in
  for _ = 1 to 20_000 do
    match Arrivals.next_after a !now with
    | Some ev ->
        gaps := (ev.Arrivals.at -. !now) :: !gaps;
        now := ev.Arrivals.at
    | None -> Alcotest.fail "expected an event"
  done;
  let mean = Stats.mean (Array.of_list !gaps) in
  check_close ~tol:50. "mean gap ~ 2160 s" 2_160. mean

let test_arrivals_level_mix () =
  let spec = Failure_spec.of_string ~baseline_scale:1e3 "30-10-0-0" in
  let rng = Rng.of_int 2 in
  let a = Arrivals.create ~rng ~spec ~scale:1e3 () in
  let counts = Array.make 4 0 in
  let now = ref 0. in
  for _ = 1 to 40_000 do
    match Arrivals.next_after a !now with
    | Some ev ->
        counts.(ev.Arrivals.level - 1) <- counts.(ev.Arrivals.level - 1) + 1;
        now := ev.Arrivals.at
    | None -> Alcotest.fail "expected an event"
  done;
  Alcotest.(check int) "zero-rate level never fires" 0 counts.(2);
  Alcotest.(check int) "zero-rate level never fires" 0 counts.(3);
  let ratio = float_of_int counts.(0) /. float_of_int counts.(1) in
  Alcotest.(check bool) "3:1 level mix" true (ratio > 2.7 && ratio < 3.3)

let test_arrivals_zero_rate () =
  let spec = Failure_spec.of_string ~baseline_scale:1e3 "0-0-0-0" in
  let a = Arrivals.create ~rng:(Rng.of_int 3) ~spec ~scale:1e3 () in
  Alcotest.(check bool) "no events" true (Arrivals.next_after a 0. = None)

let test_arrivals_sequence () =
  let spec = Failure_spec.of_string ~baseline_scale:1e3 "100-0-0-0" in
  let a = Arrivals.create ~rng:(Rng.of_int 4) ~spec ~scale:1e3 () in
  let events = Arrivals.sequence a ~horizon:86_400. in
  Alcotest.(check bool) "non-empty" true (List.length events > 50);
  let sorted = ref true and prev = ref 0. in
  List.iter
    (fun ev ->
      if ev.Arrivals.at < !prev then sorted := false;
      prev := ev.Arrivals.at;
      if ev.Arrivals.at >= 86_400. then sorted := false)
    events;
  Alcotest.(check bool) "sorted within horizon" true !sorted

let test_arrivals_deterministic () =
  let spec = Failure_spec.of_string ~baseline_scale:1e3 "5-5-5-5" in
  let seq seed =
    let a = Arrivals.create ~rng:(Rng.of_int seed) ~spec ~scale:1e3 () in
    List.map (fun e -> (e.Arrivals.at, e.Arrivals.level)) (Arrivals.sequence a ~horizon:1e5)
  in
  Alcotest.(check bool) "same seed same sequence" true (seq 7 = seq 7);
  Alcotest.(check bool) "different seed differs" true (seq 7 <> seq 8)

let test_arrivals_weibull_rate_calibration () =
  (* Weibull laws must preserve the configured mean rate. *)
  let spec = Failure_spec.of_string ~baseline_scale:1e3 "20-0-0-0" in
  List.iter
    (fun shape ->
      let a =
        Arrivals.create
          ~laws:[| Arrivals.Weibull { shape }; Arrivals.Exponential;
                   Arrivals.Exponential; Arrivals.Exponential |]
          ~rng:(Rng.of_int 11) ~spec ~scale:1e3 ()
      in
      let events = Arrivals.sequence a ~horizon:(2000. *. 86_400.) in
      let expected = 20. *. 2000. in
      let got = float_of_int (List.length events) in
      Alcotest.(check bool)
        (Printf.sprintf "shape %.1f keeps the rate (expected %.0f, got %.0f)" shape
           expected got)
        true
        (Float.abs (got -. expected) /. expected < 0.05))
    [ 0.7; 1.0; 1.5; 3.0 ]

let test_arrivals_weibull_clustering () =
  (* shape < 1 produces burstier inter-arrival gaps (higher variance than
     exponential at the same mean). *)
  let spec = Failure_spec.of_string ~baseline_scale:1e3 "20-0-0-0" in
  let gap_cv laws =
    let a = Arrivals.create ?laws ~rng:(Rng.of_int 12) ~spec ~scale:1e3 () in
    let rec collect now acc n =
      if n = 0 then acc
      else begin
        match Arrivals.next_after a now with
        | Some ev -> collect ev.Arrivals.at ((ev.Arrivals.at -. now) :: acc) (n - 1)
        | None -> acc
      end
    in
    let gaps = Array.of_list (collect 0. [] 20_000) in
    Stats.std gaps /. Stats.mean gaps
  in
  let exp_cv = gap_cv None in
  let weib_cv =
    gap_cv
      (Some
         [| Arrivals.Weibull { shape = 0.6 }; Arrivals.Exponential;
            Arrivals.Exponential; Arrivals.Exponential |])
  in
  Alcotest.(check bool) "exponential CV ~ 1" true (exp_cv > 0.9 && exp_cv < 1.1);
  Alcotest.(check bool) "weibull(0.6) burstier" true (weib_cv > 1.2)

let test_arrivals_bad_laws () =
  let spec = Failure_spec.of_string ~baseline_scale:1e3 "1-1-1-1" in
  Alcotest.(check bool) "wrong arity rejected" true
    (try
       ignore
         (Arrivals.create ~laws:[| Arrivals.Exponential |] ~rng:(Rng.of_int 1) ~spec
            ~scale:1e3 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad shape rejected" true
    (try
       ignore
         (Arrivals.create
            ~laws:
              [| Arrivals.Weibull { shape = 0. }; Arrivals.Exponential;
                 Arrivals.Exponential; Arrivals.Exponential |]
            ~rng:(Rng.of_int 1) ~spec ~scale:1e3 ());
       false
     with Invalid_argument _ -> true)

(* ---------------- Crash_model ---------------- *)

let topo () = Topology.create Topology.default_spec

let test_crash_software_no_nodes () =
  let cm = Crash_model.create ~rng:(Rng.of_int 5) ~topology:(topo ()) () in
  Alcotest.(check (list int)) "software crashes nobody" []
    (Crash_model.crashed_nodes cm Crash_model.Software)

let test_crash_board_is_adjacent () =
  let t = topo () in
  let cm = Crash_model.create ~rng:(Rng.of_int 6) ~topology:t () in
  for _ = 1 to 50 do
    let nodes = Crash_model.crashed_nodes cm Crash_model.Board in
    Alcotest.(check int) "board size" (Topology.default_spec.Topology.board_size)
      (List.length nodes);
    match nodes with
    | first :: rest ->
        List.iter
          (fun n -> Alcotest.(check bool) "same board" true (Topology.adjacent t first n))
          rest
    | [] -> Alcotest.fail "board crash must hit nodes"
  done

let test_crash_kind_distribution () =
  let cm =
    Crash_model.create ~p_software:0.5 ~p_single:0.3 ~p_board:0.1 ~rng:(Rng.of_int 7)
      ~topology:(topo ()) ()
  in
  let soft = ref 0 and single = ref 0 and board = ref 0 and multi = ref 0 in
  for _ = 1 to 10_000 do
    match Crash_model.sample_kind cm with
    | Crash_model.Software -> incr soft
    | Crash_model.Single_node -> incr single
    | Crash_model.Board -> incr board
    | Crash_model.Multi _ -> incr multi
  done;
  Alcotest.(check bool) "software ~ 50%" true (!soft > 4_700 && !soft < 5_300);
  Alcotest.(check bool) "single ~ 30%" true (!single > 2_700 && !single < 3_300);
  Alcotest.(check bool) "board ~ 10%" true (!board > 800 && !board < 1_200);
  Alcotest.(check bool) "multi ~ 10%" true (!multi > 800 && !multi < 1_200)

let test_crash_classification_consistency () =
  let t = topo () in
  let cm = Crash_model.create ~rng:(Rng.of_int 8) ~topology:t () in
  for _ = 1 to 200 do
    let _, failed, level = Crash_model.sample cm in
    Alcotest.(check int) "classification delegates to topology"
      (Topology.min_recovery_level t ~failed)
      level
  done

let test_crash_software_level1 () =
  let cm = Crash_model.create ~rng:(Rng.of_int 9) ~topology:(topo ()) () in
  Alcotest.(check int) "software -> level 1" 1 (Crash_model.recovery_level cm ~failed:[])

let () =
  Alcotest.run "ckpt_failures"
    [ ( "spec",
        [ Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "fractional" `Quick test_parse_fractional;
          Alcotest.test_case "invalid" `Quick test_parse_invalid;
          Alcotest.test_case "rate scaling" `Quick test_rate_scaling;
          Alcotest.test_case "total rate" `Quick test_total_rate;
          Alcotest.test_case "expected failures" `Quick test_expected_failures;
          Alcotest.test_case "paper cases" `Quick test_paper_cases ] );
      ( "arrivals",
        [ Alcotest.test_case "merged rate" `Quick test_arrivals_merged_rate;
          Alcotest.test_case "level mix" `Quick test_arrivals_level_mix;
          Alcotest.test_case "zero rate" `Quick test_arrivals_zero_rate;
          Alcotest.test_case "sequence" `Quick test_arrivals_sequence;
          Alcotest.test_case "deterministic" `Quick test_arrivals_deterministic;
          Alcotest.test_case "weibull rate calibration" `Quick
            test_arrivals_weibull_rate_calibration;
          Alcotest.test_case "weibull clustering" `Quick test_arrivals_weibull_clustering;
          Alcotest.test_case "bad laws rejected" `Quick test_arrivals_bad_laws ] );
      ( "crash-model",
        [ Alcotest.test_case "software crashes nobody" `Quick test_crash_software_no_nodes;
          Alcotest.test_case "board adjacency" `Quick test_crash_board_is_adjacent;
          Alcotest.test_case "kind distribution" `Quick test_crash_kind_distribution;
          Alcotest.test_case "classification consistent" `Quick
            test_crash_classification_consistency;
          Alcotest.test_case "software level 1" `Quick test_crash_software_level1 ] ) ]
