(* Tests for the discrete-event simulation kernel. *)

open Ckpt_simkernel

(* ---------------- Event_queue ---------------- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:3. "c");
  ignore (Event_queue.push q ~time:1. "a");
  ignore (Event_queue.push q ~time:2. "b");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] [ first; second; third ]

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:5. "first");
  ignore (Event_queue.push q ~time:5. "second");
  ignore (Event_queue.push q ~time:5. "third");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  let one = pop () in
  let two = pop () in
  let three = pop () in
  Alcotest.(check (list string)) "insertion order at equal times"
    [ "first"; "second"; "third" ]
    [ one; two; three ]

let test_queue_cancel () =
  let q = Event_queue.create () in
  let _a = Event_queue.push q ~time:1. "a" in
  let b = Event_queue.push q ~time:2. "b" in
  ignore (Event_queue.push q ~time:3. "c");
  Event_queue.cancel q b;
  Alcotest.(check int) "size after cancel" 2 (Event_queue.size q);
  Alcotest.(check bool) "is_cancelled" true (Event_queue.is_cancelled q b);
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  let one = pop () in
  let two = pop () in
  Alcotest.(check (list string)) "skips cancelled" [ "a"; "c" ] [ one; two ];
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_queue_cancel_fired_noop () =
  let q = Event_queue.create () in
  let a = Event_queue.push q ~time:1. "a" in
  ignore (Event_queue.push q ~time:2. "b");
  ignore (Event_queue.pop q);
  Event_queue.cancel q a;
  (* Cancelling a fired event must not disturb the remaining ones. *)
  Alcotest.(check int) "size unchanged" 1 (Event_queue.size q);
  Alcotest.(check bool) "b still pops" true (Event_queue.pop q <> None)

let test_queue_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option (float 0.))) "empty peek" None (Event_queue.peek_time q);
  let a = Event_queue.push q ~time:4. "a" in
  ignore (Event_queue.push q ~time:9. "b");
  Alcotest.(check (option (float 0.))) "peek min" (Some 4.) (Event_queue.peek_time q);
  Event_queue.cancel q a;
  Alcotest.(check (option (float 0.))) "peek skips cancelled" (Some 9.)
    (Event_queue.peek_time q)

let test_queue_clear () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:1. "a");
  ignore (Event_queue.push q ~time:2. "b");
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q);
  Alcotest.(check (option (float 0.))) "no peek" None (Event_queue.peek_time q)

let test_queue_grow () =
  let q = Event_queue.create () in
  for i = 0 to 999 do
    ignore (Event_queue.push q ~time:(float_of_int (999 - i)) i)
  done;
  Alcotest.(check int) "size" 1000 (Event_queue.size q);
  let prev = ref neg_infinity in
  let sorted = ref true in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, _) ->
        if t < !prev then sorted := false;
        prev := t;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "sorted drain" true !sorted

(* ---------------- Sim ---------------- *)

let test_sim_order_and_clock () =
  let sim = Sim.create () in
  let log = ref [] in
  let note tag sim = log := (tag, Sim.now sim) :: !log in
  ignore (Sim.schedule_at sim ~time:2. (note "b"));
  ignore (Sim.schedule_at sim ~time:1. (note "a"));
  ignore (Sim.schedule_after sim ~delay:3. (note "c"));
  Sim.run sim;
  Alcotest.(check (list (pair string (float 0.))))
    "order and timestamps"
    [ ("a", 1.); ("b", 2.); ("c", 3.) ]
    (List.rev !log)

let test_sim_past_raises () =
  let sim = Sim.create ~start_time:10. () in
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       ignore (Sim.schedule_at sim ~time:5. (fun _ -> ()));
       false
     with Sim.Time_in_the_past { now = 10.; requested = 5. } -> true)

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let hits = ref 0 in
  ignore
    (Sim.schedule_at sim ~time:1. (fun sim ->
         incr hits;
         ignore (Sim.schedule_after sim ~delay:1. (fun _ -> incr hits))));
  Sim.run sim;
  Alcotest.(check int) "both ran" 2 !hits;
  Alcotest.(check (float 0.)) "clock at last event" 2. (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let hits = ref 0 in
  let id = Sim.schedule_at sim ~time:1. (fun _ -> incr hits) in
  Sim.cancel sim id;
  Sim.run sim;
  Alcotest.(check int) "cancelled never runs" 0 !hits

let test_sim_run_until () =
  let sim = Sim.create () in
  let hits = ref 0 in
  ignore (Sim.schedule_at sim ~time:1. (fun _ -> incr hits));
  ignore (Sim.schedule_at sim ~time:10. (fun _ -> incr hits));
  Sim.run ~until:5. sim;
  Alcotest.(check int) "only early event" 1 !hits;
  Alcotest.(check (float 0.)) "clock advanced to horizon" 5. (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "late event eventually runs" 2 !hits

let test_sim_until_beyond_queue () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1. (fun _ -> ()));
  Sim.run ~until:100. sim;
  Alcotest.(check (float 0.)) "clock lands on horizon" 100. (Sim.now sim)

let test_sim_stop () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1. (fun sim -> Sim.stop sim));
  ignore (Sim.schedule_at sim ~time:2. (fun _ -> Alcotest.fail "should not run"));
  Sim.run sim;
  Alcotest.(check bool) "stopped" true (Sim.stopped sim);
  Alcotest.(check int) "second event still queued" 1 (Sim.pending sim)

let test_sim_step () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:1. (fun _ -> ()));
  Alcotest.(check bool) "one step" true (Sim.step sim);
  Alcotest.(check bool) "drained" false (Sim.step sim)

(* ---------------- Trace ---------------- *)

let test_trace_records () =
  let t = Trace.create () in
  Trace.record t ~time:1. ~tag:"failure" "level 2";
  Trace.recordf t ~time:2. ~tag:"ckpt" "level %d" 3;
  Alcotest.(check int) "length" 2 (Trace.length t);
  match Trace.entries t with
  | [ a; b ] ->
      Alcotest.(check string) "first tag" "failure" a.Trace.tag;
      Alcotest.(check string) "formatted detail" "level 3" b.Trace.detail
  | _ -> Alcotest.fail "expected two entries"

let test_trace_find_all () =
  let t = Trace.create () in
  Trace.record t ~time:1. ~tag:"a" "1";
  Trace.record t ~time:2. ~tag:"b" "2";
  Trace.record t ~time:3. ~tag:"a" "3";
  Alcotest.(check int) "two with tag a" 2 (List.length (Trace.find_all t ~tag:"a"))

let test_trace_disabled () =
  let t = Trace.create ~enabled:false () in
  Trace.record t ~time:1. ~tag:"x" "dropped";
  Trace.recordf t ~time:1. ~tag:"x" "also %s" "dropped";
  Alcotest.(check int) "nothing recorded" 0 (Trace.length t);
  Trace.set_enabled t true;
  Trace.record t ~time:2. ~tag:"x" "kept";
  Alcotest.(check int) "recording after enable" 1 (Trace.length t)

let test_trace_clear () =
  let t = Trace.create () in
  Trace.record t ~time:1. ~tag:"x" "y";
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t)

(* ---------------- properties ---------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"heap drains in sorted order" ~count:200
      (list_of_size (Gen.int_range 0 200) (float_range 0. 1e6))
      (fun times ->
        let q = Event_queue.create () in
        List.iter (fun t -> ignore (Event_queue.push q ~time:t ())) times;
        let rec drain prev =
          match Event_queue.pop q with
          | None -> true
          | Some (t, ()) -> t >= prev && drain t
        in
        drain neg_infinity);
    Test.make ~name:"cancelling a random subset leaves the rest" ~count:200
      (list_of_size (Gen.int_range 0 100) (pair (float_range 0. 100.) bool))
      (fun entries ->
        let q = Event_queue.create () in
        let kept = ref 0 in
        List.iter
          (fun (t, keep) ->
            let h = Event_queue.push q ~time:t () in
            if keep then incr kept else Event_queue.cancel q h)
          entries;
        let rec count acc =
          match Event_queue.pop q with None -> acc | Some _ -> count (acc + 1)
        in
        count 0 = !kept) ]

let () =
  Alcotest.run "ckpt_simkernel"
    [ ( "event-queue",
        [ Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
          Alcotest.test_case "cancel fired no-op" `Quick test_queue_cancel_fired_noop;
          Alcotest.test_case "peek" `Quick test_queue_peek;
          Alcotest.test_case "clear" `Quick test_queue_clear;
          Alcotest.test_case "grow and drain" `Quick test_queue_grow ] );
      ( "sim",
        [ Alcotest.test_case "order and clock" `Quick test_sim_order_and_clock;
          Alcotest.test_case "past raises" `Quick test_sim_past_raises;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "run until" `Quick test_sim_run_until;
          Alcotest.test_case "until beyond queue" `Quick test_sim_until_beyond_queue;
          Alcotest.test_case "stop" `Quick test_sim_stop;
          Alcotest.test_case "step" `Quick test_sim_step ] );
      ( "trace",
        [ Alcotest.test_case "records" `Quick test_trace_records;
          Alcotest.test_case "find_all" `Quick test_trace_find_all;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "clear" `Quick test_trace_clear ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
