(* Tests for the FTI-style checkpoint runtime: level semantics, crash
   patterns, recovery protocol and escalation. *)

module Topology = Ckpt_topology.Topology
module Runtime = Ckpt_fti.Runtime
module Rng = Ckpt_numerics.Rng

let small_spec =
  { Topology.nodes = 16; cores_per_node = 2; board_size = 4; rs_group_size = 8;
    rs_parity = 2 }

let make () =
  let topology = Topology.create small_spec in
  (topology, Runtime.create ~topology ())

let payload_of seed node = Bytes.of_string (Printf.sprintf "node-%d-seed-%d-%s" node seed
                                              (String.make (node mod 7) 'x'))

let checkpoint ?(seed = 0) fti ~ckpt_id ~level =
  Runtime.checkpoint fti ~ckpt_id ~level ~data:(payload_of seed)

let verify_recovery ?(seed = 0) topology (r : Runtime.recovery) =
  Array.iter
    (fun node ->
      Alcotest.(check string)
        (Printf.sprintf "node %d payload" node)
        (Bytes.to_string (payload_of seed node))
        (Bytes.to_string (r.Runtime.data node)))
    (Array.init (Topology.node_count topology) (fun i -> i))

let test_checkpoint_and_recover_no_crash () =
  let topology, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:1;
  match Runtime.recover fti with
  | Some r ->
      Alcotest.(check int) "ckpt id" 1 r.Runtime.ckpt_id;
      Alcotest.(check int) "level 1 suffices" 1 r.Runtime.level_used;
      verify_recovery topology r
  | None -> Alcotest.fail "expected recovery"

let test_ids_must_increase () =
  let _, fti = make () in
  checkpoint fti ~ckpt_id:5 ~level:1;
  Alcotest.(check bool) "non-increasing rejected" true
    (try
       checkpoint fti ~ckpt_id:5 ~level:1;
       false
     with Invalid_argument _ -> true)

let test_level_out_of_range () =
  let _, fti = make () in
  Alcotest.(check bool) "level 0 rejected" true
    (try
       checkpoint fti ~ckpt_id:1 ~level:0;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "level 5 rejected" true
    (try
       checkpoint fti ~ckpt_id:1 ~level:5;
       false
     with Invalid_argument _ -> true)

let test_level1_lost_on_any_crash () =
  let _, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:1;
  Runtime.crash_nodes fti [ 3 ];
  Alcotest.(check (option int)) "level-1-only ckpt unrecoverable" None
    (Runtime.recoverable_level fti ~ckpt_id:1)

let test_partner_recovers_single_crash () =
  let topology, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:2;
  Runtime.crash_nodes fti [ 3 ];
  match Runtime.recover fti with
  | Some r ->
      Alcotest.(check int) "partner level" 2 r.Runtime.level_used;
      verify_recovery topology r
  | None -> Alcotest.fail "expected recovery"

let test_partner_recovers_board_crash () =
  let topology, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:2;
  Runtime.crash_nodes fti [ 4; 5; 6; 7 ];
  match Runtime.recover fti with
  | Some r ->
      Alcotest.(check int) "partner level survives a board" 2 r.Runtime.level_used;
      verify_recovery topology r
  | None -> Alcotest.fail "expected recovery"

let test_partner_fails_on_pair () =
  let _, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:2;
  let topology = Runtime.topology fti in
  let victim = 2 in
  Runtime.crash_nodes fti [ victim; Topology.partner_of topology victim ];
  Alcotest.(check (option int)) "partner pair kills level 2" None
    (Runtime.recoverable_level fti ~ckpt_id:1)

let test_rs_recovers_partner_pair () =
  let topology, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:3;
  let victim = 2 in
  Runtime.crash_nodes fti [ victim; Topology.partner_of topology victim ];
  match Runtime.recover fti with
  | Some r ->
      Alcotest.(check int) "RS decodes" 3 r.Runtime.level_used;
      verify_recovery topology r
  | None -> Alcotest.fail "expected recovery"

let test_rs_respects_parity_budget () =
  let topology, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:3;
  (* Three losses in RS group 0 (> parity 2), partners dead too: nothing
     below the PFS works, and no PFS copy was written. *)
  ignore topology;
  Runtime.crash_nodes fti [ 0; 1; 2; 4; 5; 6 ];
  Alcotest.(check (option int)) "RS exceeded" None (Runtime.recoverable_level fti ~ckpt_id:1)

let test_pfs_always_recovers () =
  let topology, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:4;
  Runtime.crash_nodes fti (List.init 16 (fun i -> i));
  match Runtime.recover fti with
  | Some r ->
      Alcotest.(check int) "PFS survives everything" 4 r.Runtime.level_used;
      verify_recovery topology r
  | None -> Alcotest.fail "expected recovery"

let test_recover_falls_back_to_older_ckpt () =
  let topology, fti = make () in
  checkpoint fti ~seed:1 ~ckpt_id:1 ~level:4;
  checkpoint fti ~seed:2 ~ckpt_id:2 ~level:1;
  Runtime.crash_nodes fti [ 7 ];
  (* Checkpoint 2 (local only) is gone; recovery must fall back to
     checkpoint 1, whose partner copy of node 7 survived. *)
  match Runtime.recover fti with
  | Some r ->
      Alcotest.(check int) "older checkpoint" 1 r.Runtime.ckpt_id;
      Alcotest.(check int) "served by the partner copy" 2 r.Runtime.level_used;
      verify_recovery ~seed:1 topology r
  | None -> Alcotest.fail "expected recovery"

let test_recover_prefers_newest () =
  let topology, fti = make () in
  checkpoint fti ~seed:1 ~ckpt_id:1 ~level:4;
  checkpoint fti ~seed:2 ~ckpt_id:2 ~level:2;
  Runtime.crash_nodes fti [ 9 ];
  match Runtime.recover fti with
  | Some r ->
      Alcotest.(check int) "newest recoverable wins" 2 r.Runtime.ckpt_id;
      verify_recovery ~seed:2 topology r
  | None -> Alcotest.fail "expected recovery"

let test_history () =
  let _, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:1;
  checkpoint fti ~ckpt_id:2 ~level:4;
  Alcotest.(check (list (pair int int))) "newest first" [ (2, 4); (1, 1) ]
    (Runtime.history fti)

let test_no_checkpoint_no_recovery () =
  let _, fti = make () in
  Alcotest.(check bool) "nothing to recover" true (Runtime.recover fti = None)

let test_unequal_payload_sizes_rs () =
  (* RS framing must cope with per-node payloads of different lengths. *)
  let topology = Topology.create small_spec in
  let fti = Runtime.create ~topology () in
  let data node = Bytes.of_string (String.make (1 + (node * 3)) (Char.chr (65 + node))) in
  Runtime.checkpoint fti ~ckpt_id:1 ~level:3 ~data;
  let victim = 1 in
  Runtime.crash_nodes fti [ victim; Topology.partner_of topology victim ];
  match Runtime.recover fti with
  | Some r ->
      Alcotest.(check int) "via RS" 3 r.Runtime.level_used;
      for node = 0 to 15 do
        Alcotest.(check bytes) "payload" (data node) (r.Runtime.data node)
      done
  | None -> Alcotest.fail "expected recovery"

let test_higher_level_includes_lower_copies () =
  (* A level-4 checkpoint also leaves local copies: with no crash it is
     recoverable at level 1. *)
  let _, fti = make () in
  checkpoint fti ~ckpt_id:1 ~level:4;
  Alcotest.(check (option int)) "cheapest path" (Some 1)
    (Runtime.recoverable_level fti ~ckpt_id:1)

(* ---------------- Executor: end-to-end fault tolerance ---------------- *)

module Executor = Ckpt_fti.Executor

(* A tiny deterministic per-node app: an accumulating hash of the
   iteration stream, so any divergence is detected. *)
let counter_app =
  { Executor.init = (fun node -> Int64.of_int (node * 1_000_003));
    step =
      (fun ~iteration ~node v ->
        let open Int64 in
        add (mul v 6364136223846793005L) (of_int ((iteration * 31) + node)));
    serialize =
      (fun v ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 v;
        b);
    deserialize = (fun b -> Bytes.get_int64_le b 0) }

let exec_topology = Topology.create small_spec

let every_other_l4 =
  { Executor.interval = 2; level_of = (fun k -> if k mod 4 = 0 then 4 else 1) }

let test_executor_no_crashes_matches_reference () =
  let reference = Executor.run_crash_free ~topology:exec_topology counter_app ~iterations:20 in
  let result, stats =
    Executor.run ~topology:exec_topology counter_app ~iterations:20
      ~schedule:every_other_l4 ~crashes:[]
  in
  Alcotest.(check bool) "identical states" true (reference = result);
  Alcotest.(check int) "no recoveries" 0 (List.length stats.Executor.recoveries);
  Alcotest.(check int) "completed" 20 stats.Executor.completed_iterations

let test_executor_crash_recovers_exactly () =
  let reference = Executor.run_crash_free ~topology:exec_topology counter_app ~iterations:30 in
  let result, stats =
    Executor.run ~topology:exec_topology counter_app ~iterations:30
      ~schedule:Executor.fti_cadence ~crashes:[ (11, [ 3 ]); (23, [ 7; 8 ]) ]
  in
  Alcotest.(check bool) "exact final state despite crashes" true (reference = result);
  Alcotest.(check int) "two crash events" 2 stats.Executor.crashes_injected;
  Alcotest.(check int) "two recoveries" 2 (List.length stats.Executor.recoveries);
  Alcotest.(check bool) "work was redone" true (stats.Executor.reexecuted_iterations > 0)

let test_executor_crash_before_any_ckpt_restarts () =
  let reference = Executor.run_crash_free ~topology:exec_topology counter_app ~iterations:10 in
  let result, stats =
    Executor.run ~topology:exec_topology counter_app ~iterations:10
      ~schedule:{ Executor.interval = 100; level_of = (fun _ -> 4) }
      ~crashes:[ (5, [ 0 ]) ]
  in
  Alcotest.(check bool) "still exact (restart from init)" true (reference = result);
  Alcotest.(check (list (pair int int))) "restart recovery" [ (0, 0) ]
    stats.Executor.recoveries;
  Alcotest.(check int) "4 iterations redone" 4 stats.Executor.reexecuted_iterations

let test_executor_recovery_levels_escalate () =
  (* Crash a node AND its partner: the partner level cannot serve. *)
  let partner = Topology.partner_of exec_topology 2 in
  let schedule = { Executor.interval = 2; level_of = (fun _ -> 3) } in
  let _, stats =
    Executor.run ~topology:exec_topology counter_app ~iterations:12 ~schedule
      ~crashes:[ (7, [ 2; partner ]) ]
  in
  match stats.Executor.recoveries with
  | [ (_, level) ] -> Alcotest.(check int) "served via RS" 3 level
  | _ -> Alcotest.fail "expected one recovery"

let test_executor_validation () =
  Alcotest.(check bool) "crash node out of range" true
    (try
       ignore
         (Executor.run ~topology:exec_topology counter_app ~iterations:5
            ~schedule:Executor.fti_cadence ~crashes:[ (1, [ 99 ]) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "crash iteration out of range" true
    (try
       ignore
         (Executor.run ~topology:exec_topology counter_app ~iterations:5
            ~schedule:Executor.fti_cadence ~crashes:[ (9, [ 0 ]) ]);
       false
     with Invalid_argument _ -> true)

(* Property: for random single/double/triple crash sets, a level-4
   checkpoint always recovers with correct data. *)
let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"level-4 checkpoints survive any crash set" ~count:100
      (pair small_int (list_of_size (Gen.int_range 0 10) (int_range 0 15)))
      (fun (seed, crashes) ->
        let topology = Topology.create small_spec in
        let fti = Runtime.create ~topology () in
        Runtime.checkpoint fti ~ckpt_id:1 ~level:4 ~data:(payload_of seed);
        Runtime.crash_nodes fti crashes;
        match Runtime.recover fti with
        | None -> false
        | Some r ->
            Array.for_all
              (fun node -> Bytes.equal (r.Runtime.data node) (payload_of seed node))
              (Array.init 16 (fun i -> i)));
    Test.make ~name:"recovery level never undercuts the damage" ~count:100
      (list_of_size (Gen.int_range 1 6) (int_range 0 15))
      (fun crashes ->
        let topology = Topology.create small_spec in
        let fti = Runtime.create ~topology () in
        Runtime.checkpoint fti ~ckpt_id:1 ~level:4 ~data:(payload_of 3);
        Runtime.crash_nodes fti crashes;
        match Runtime.recover fti with
        | None -> false
        | Some r ->
            (* A crash destroyed local data on at least one node, so pure
               level-1 recovery is impossible. *)
            r.Runtime.level_used >= 2) ]

let executor_qcheck =
  let open QCheck in
  [ Test.make ~name:"execution under random crashes is exact" ~count:60
      (pair (int_range 5 40)
         (list_of_size (Gen.int_range 0 4)
            (pair (int_range 1 40) (list_of_size (Gen.int_range 1 3) (int_range 0 15)))))
      (fun (iterations, raw_crashes) ->
        let crashes = List.filter (fun (it, _) -> it <= iterations) raw_crashes in
        let reference =
          Executor.run_crash_free ~topology:exec_topology counter_app ~iterations
        in
        let result, _ =
          Executor.run ~topology:exec_topology counter_app ~iterations
            ~schedule:Executor.fti_cadence ~crashes
        in
        reference = result) ]

let () =
  Alcotest.run "ckpt_fti"
    [ ( "checkpoint",
        [ Alcotest.test_case "no crash" `Quick test_checkpoint_and_recover_no_crash;
          Alcotest.test_case "ids increase" `Quick test_ids_must_increase;
          Alcotest.test_case "level range" `Quick test_level_out_of_range;
          Alcotest.test_case "history" `Quick test_history;
          Alcotest.test_case "higher level includes lower" `Quick
            test_higher_level_includes_lower_copies ] );
      ( "recovery",
        [ Alcotest.test_case "level 1 lost on crash" `Quick test_level1_lost_on_any_crash;
          Alcotest.test_case "partner single crash" `Quick test_partner_recovers_single_crash;
          Alcotest.test_case "partner board crash" `Quick test_partner_recovers_board_crash;
          Alcotest.test_case "partner pair fails" `Quick test_partner_fails_on_pair;
          Alcotest.test_case "rs recovers pair" `Quick test_rs_recovers_partner_pair;
          Alcotest.test_case "rs parity budget" `Quick test_rs_respects_parity_budget;
          Alcotest.test_case "pfs always recovers" `Quick test_pfs_always_recovers;
          Alcotest.test_case "fallback to older" `Quick test_recover_falls_back_to_older_ckpt;
          Alcotest.test_case "prefers newest" `Quick test_recover_prefers_newest;
          Alcotest.test_case "nothing to recover" `Quick test_no_checkpoint_no_recovery;
          Alcotest.test_case "unequal payloads via RS" `Quick test_unequal_payload_sizes_rs ] );
      ( "executor",
        [ Alcotest.test_case "no crashes" `Quick test_executor_no_crashes_matches_reference;
          Alcotest.test_case "crash recovers exactly" `Quick
            test_executor_crash_recovers_exactly;
          Alcotest.test_case "restart before first ckpt" `Quick
            test_executor_crash_before_any_ckpt_restarts;
          Alcotest.test_case "levels escalate" `Quick test_executor_recovery_levels_escalate;
          Alcotest.test_case "validation" `Quick test_executor_validation ] );
      ("properties", List.map QCheck_alcotest.to_alcotest (qcheck_tests @ executor_qcheck)) ]
