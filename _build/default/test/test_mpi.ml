(* Tests for the MPI program emulator: machine model, program DSL,
   emulator semantics, the Heat/Nek workloads and the speedup study. *)

open Ckpt_mpi

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

let machine = Machine.default

(* ---------------- Machine ---------------- *)

let test_machine_compute () =
  check_close "1 Gflop at 1 Gflop/s" 1. (Machine.compute_time machine ~flops:1e9);
  check_close "zero flops" 0. (Machine.compute_time machine ~flops:0.)

let test_machine_message () =
  check_close "latency only" machine.Machine.net_latency (Machine.message_time machine ~bytes:0.);
  check_close "latency + transfer"
    (machine.Machine.net_latency +. (1e6 /. machine.Machine.net_bandwidth))
    (Machine.message_time machine ~bytes:1e6)

let test_machine_log2_ceil () =
  Alcotest.(check int) "1" 0 (Machine.log2_ceil 1);
  Alcotest.(check int) "2" 1 (Machine.log2_ceil 2);
  Alcotest.(check int) "3" 2 (Machine.log2_ceil 3);
  Alcotest.(check int) "1024" 10 (Machine.log2_ceil 1024);
  Alcotest.(check int) "1025" 11 (Machine.log2_ceil 1025)

let test_machine_collective () =
  check_close "tree depth x message"
    (3. *. Machine.message_time machine ~bytes:64.)
    (Machine.collective_time machine ~ranks:8 ~bytes:64.)

(* ---------------- Program validation ---------------- *)

let test_validate_good () =
  let prog =
    Program.v ~name:"pingpong" ~ranks:2 ~code:(fun rank ->
        if rank = 0 then [ Program.Send { dst = 1; bytes = 8. }; Program.Recv { src = 1 } ]
        else [ Program.Recv { src = 0 }; Program.Send { dst = 0; bytes = 8. } ])
  in
  Alcotest.(check bool) "valid" true (Program.validate prog = Ok ());
  Alcotest.(check int) "instruction count" 4 (Program.instruction_count prog)

let expect_invalid prog =
  match Program.validate prog with
  | Ok () -> Alcotest.fail "expected validation error"
  | Error _ -> ()

let test_validate_bad_rank () =
  expect_invalid
    (Program.v ~name:"bad" ~ranks:2 ~code:(fun _ -> [ Program.Send { dst = 5; bytes = 1. } ]))

let test_validate_self_message () =
  expect_invalid
    (Program.v ~name:"self" ~ranks:2 ~code:(fun rank ->
         [ Program.Send { dst = rank; bytes = 1. } ]))

let test_validate_unclosed_irecv () =
  expect_invalid
    (Program.v ~name:"open" ~ranks:2 ~code:(fun rank ->
         if rank = 0 then [ Program.Irecv { src = 1 } ] else [ Program.Isend { dst = 0; bytes = 1. } ]))

let test_validate_collective_mismatch () =
  expect_invalid
    (Program.v ~name:"mismatch" ~ranks:2 ~code:(fun rank ->
         if rank = 0 then [ Program.Barrier ] else []))

(* ---------------- Emulator semantics ---------------- *)

let test_emulator_compute_only () =
  let prog = Program.v ~name:"c" ~ranks:3 ~code:(fun _ -> [ Program.Compute 1e9 ]) in
  let r = Emulator.run ~machine prog in
  check_close "ranks run in parallel" 1. r.Emulator.job_time;
  Alcotest.(check int) "no messages" 0 r.Emulator.messages

let test_emulator_pingpong_timing () =
  (* Rank 0 sends 1 MB to rank 1, who replies; total = 2 RTT halves plus
     sender overheads. *)
  let bytes = 1e6 in
  let prog =
    Program.v ~name:"pp" ~ranks:2 ~code:(fun rank ->
        if rank = 0 then [ Program.Send { dst = 1; bytes }; Program.Recv { src = 1 } ]
        else [ Program.Recv { src = 0 }; Program.Send { dst = 0; bytes } ])
  in
  let r = Emulator.run ~machine prog in
  let one_way = Machine.message_time machine ~bytes in
  let expected = (2. *. machine.Machine.send_overhead) +. (2. *. one_way) in
  check_close ~tol:1e-9 "round trip" expected r.Emulator.job_time;
  Alcotest.(check int) "two messages" 2 r.Emulator.messages

let test_emulator_send_is_buffered () =
  (* The sender does not block: it finishes after its overhead even though
     the receiver computes for a long time first. *)
  let prog =
    Program.v ~name:"buffered" ~ranks:2 ~code:(fun rank ->
        if rank = 0 then [ Program.Send { dst = 1; bytes = 8. } ]
        else [ Program.Compute 1e9; Program.Recv { src = 0 } ])
  in
  let r = Emulator.run ~machine prog in
  check_close "receiver dominates" 1. r.Emulator.rank_times.(1);
  Alcotest.(check bool) "sender finished early" true
    (r.Emulator.rank_times.(0) < 1e-3)

let test_emulator_waitall () =
  let prog =
    Program.v ~name:"waitall" ~ranks:3 ~code:(fun rank ->
        if rank = 0 then
          [ Program.Irecv { src = 1 }; Program.Irecv { src = 2 }; Program.Waitall ]
        else [ Program.Compute (float_of_int rank *. 1e9); Program.Isend { dst = 0; bytes = 8. } ])
  in
  let r = Emulator.run ~machine prog in
  (* Rank 0 completes when the slowest sender's message arrives. *)
  Alcotest.(check bool) "waits for slowest" true (r.Emulator.rank_times.(0) >= 2.)

let test_emulator_barrier_sync () =
  let prog =
    Program.v ~name:"barrier" ~ranks:4 ~code:(fun rank ->
        [ Program.Compute (float_of_int (rank + 1) *. 1e8); Program.Barrier ])
  in
  let r = Emulator.run ~machine prog in
  let latest = Array.fold_left Float.max 0. r.Emulator.rank_times in
  Array.iter
    (fun t -> check_close ~tol:1e-9 "all ranks leave together" latest t)
    r.Emulator.rank_times;
  Alcotest.(check bool) "after the slowest compute" true (latest >= 0.4);
  Alcotest.(check int) "one collective" 1 r.Emulator.collectives

let test_emulator_allreduce_cost_grows () =
  let prog ranks =
    Program.v ~name:"ar" ~ranks ~code:(fun _ -> [ Program.Allreduce { bytes = 64. } ])
  in
  let t4 = (Emulator.run ~machine (prog 4)).Emulator.job_time in
  let t64 = (Emulator.run ~machine (prog 64)).Emulator.job_time in
  Alcotest.(check bool) "log tree depth" true (t64 > t4)

let test_emulator_reduce_gather_alltoall () =
  let machine = Ckpt_mpi.Machine.default in
  let one ranks instr =
    (Emulator.run ~machine
       (Program.v ~name:"coll" ~ranks ~code:(fun _ -> [ instr ])))
      .Emulator.job_time
  in
  (* Reduce follows the tree schedule (same as allreduce here). *)
  check_close ~tol:1e-12 "reduce = tree cost"
    (Machine.collective_time machine ~ranks:8 ~bytes:64.)
    (one 8 (Program.Reduce { root = 0; bytes = 64. }));
  (* Gather and alltoall pay (n-1) message costs. *)
  check_close ~tol:1e-12 "gather = linear cost"
    (Machine.linear_collective_time machine ~ranks:8 ~bytes:64.)
    (one 8 (Program.Gather { root = 0; bytes = 64. }));
  check_close ~tol:1e-12 "alltoall = linear cost"
    (Machine.linear_collective_time machine ~ranks:8 ~bytes:64.)
    (one 8 (Program.Alltoall { bytes = 64. }));
  (* Linear collectives overtake tree ones as the scale grows. *)
  Alcotest.(check bool) "alltoall costlier than allreduce at 64 ranks" true
    (one 64 (Program.Alltoall { bytes = 1024. })
     > one 64 (Program.Allreduce { bytes = 1024. }))

let test_emulator_deadlock () =
  (* Two ranks both receive first: classic deadlock. *)
  let prog =
    Program.v ~name:"deadlock" ~ranks:2 ~code:(fun rank ->
        let peer = 1 - rank in
        [ Program.Recv { src = peer }; Program.Send { dst = peer; bytes = 1. } ])
  in
  Alcotest.(check bool) "detected" true
    (try
       ignore (Emulator.run ~machine prog);
       false
     with Emulator.Deadlock _ -> true)

let test_emulator_fifo_channels () =
  (* Two sends on the same channel are received in order; timing follows
     the first-sent message first. *)
  let prog =
    Program.v ~name:"fifo" ~ranks:2 ~code:(fun rank ->
        if rank = 0 then
          [ Program.Send { dst = 1; bytes = 1e6 }; Program.Send { dst = 1; bytes = 8. } ]
        else [ Program.Recv { src = 0 }; Program.Recv { src = 0 } ])
  in
  let r = Emulator.run ~machine prog in
  Alcotest.(check bool) "completes" true (r.Emulator.job_time > 0.)

let test_emulator_invalid_program_raises () =
  let prog =
    Program.v ~name:"invalid" ~ranks:2 ~code:(fun _ -> [ Program.Send { dst = 9; bytes = 1. } ])
  in
  Alcotest.(check bool) "invalid_arg" true
    (try
       ignore (Emulator.run ~machine prog);
       false
     with Invalid_argument _ -> true)

(* ---------------- Heat ---------------- *)

let test_heat_decompose () =
  Alcotest.(check (pair int int)) "16" (4, 4) (Heat.decompose ~ranks:16);
  Alcotest.(check (pair int int)) "12" (3, 4) (Heat.decompose ~ranks:12);
  Alcotest.(check (pair int int)) "7 (prime)" (1, 7) (Heat.decompose ~ranks:7);
  Alcotest.(check (pair int int)) "1" (1, 1) (Heat.decompose ~ranks:1)

let test_heat_program_valid () =
  List.iter
    (fun ranks ->
      let prog = Heat.program ~ranks () in
      match Program.validate prog with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%d ranks: %s" ranks e))
    [ 1; 2; 4; 7; 16; 64 ]

let test_heat_speedup_reasonable () =
  let t1 = (Emulator.run ~machine (Heat.program ~ranks:1 ())).Emulator.job_time in
  let t16 = (Emulator.run ~machine (Heat.program ~ranks:16 ())).Emulator.job_time in
  let s = t1 /. t16 in
  Alcotest.(check bool) "speedup between 8 and 16" true (s > 8. && s <= 16.)

let test_heat_paper_calibration () =
  (* The emulated Heat Distribution should be near the paper's measured
     point: speedup ~77 at 160 cores (we accept 60-90). *)
  let t1 = (Emulator.run ~machine (Heat.program ~ranks:1 ())).Emulator.job_time in
  let t160 = (Emulator.run ~machine (Heat.program ~ranks:160 ())).Emulator.job_time in
  let s = t1 /. t160 in
  Alcotest.(check bool)
    (Printf.sprintf "speedup at 160 cores ~ 77 (got %.1f)" s)
    true (s > 60. && s < 90.)

(* ---------------- Jacobi ---------------- *)

let test_jacobi_converges_to_boundary () =
  (* Uniform hot boundary: the interior converges toward the boundary
     value. *)
  let g = Heat.Jacobi.create ~size:10 in
  for i = 0 to 9 do
    Heat.Jacobi.set g 0 i 100.;
    Heat.Jacobi.set g 9 i 100.;
    Heat.Jacobi.set g i 0 100.;
    Heat.Jacobi.set g i 9 100.
  done;
  ignore (Heat.Jacobi.run g ~iterations:500);
  Alcotest.(check bool) "interior near 100" true (Heat.Jacobi.get g 5 5 > 99.)

let test_jacobi_residual_decreases () =
  let g = Heat.Jacobi.create ~size:16 in
  Heat.Jacobi.set g 8 8 1000.;
  let r1 = Heat.Jacobi.step g in
  ignore (Heat.Jacobi.run g ~iterations:50);
  let r2 = Heat.Jacobi.step g in
  Alcotest.(check bool) "residual shrinks" true (r2 < r1)

let test_jacobi_serialize_roundtrip () =
  let g = Heat.Jacobi.create ~size:12 in
  Heat.Jacobi.set g 3 4 42.5;
  Heat.Jacobi.set g 7 2 (-1.25);
  ignore (Heat.Jacobi.run g ~iterations:3);
  let g' = Heat.Jacobi.deserialize (Heat.Jacobi.serialize g) in
  Alcotest.(check bool) "roundtrip equal" true (Heat.Jacobi.equal g g')

let test_jacobi_deserialize_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Heat.Jacobi.deserialize (Bytes.of_string "junk"));
       false
     with Invalid_argument _ -> true)

(* ---------------- Nek ---------------- *)

let test_nek_program_valid () =
  List.iter
    (fun ranks ->
      match Program.validate (Nek_eddy.program ~ranks ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 1; 2; 3; 50; 100 ]

let test_nek_speedup_peaks () =
  let time ranks = (Emulator.run ~machine (Nek_eddy.program ~ranks ())).Emulator.job_time in
  let t1 = time 1 in
  let s64 = t1 /. time 64 in
  let s400 = t1 /. time 400 in
  Alcotest.(check bool) "scales at small N" true (s64 > 10.);
  Alcotest.(check bool) "decays past the peak" true (s400 < s64)

(* ---------------- CG program ---------------- *)

let test_cg_program_valid () =
  List.iter
    (fun ranks ->
      match Program.validate (Cg_program.program ~ranks ()) with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 1; 2; 3; 16; 100 ]

let test_cg_scaling_shape () =
  let time ranks =
    (Emulator.run ~machine (Cg_program.program ~ranks ())).Emulator.job_time
  in
  let t1 = time 1 in
  let eff ranks = t1 /. time ranks /. float_of_int ranks in
  (* Efficient at small scale, saturating as the two Allreduces per
     iteration start to dominate the shrinking per-rank compute. *)
  Alcotest.(check bool) "near-perfect at 8 ranks" true (eff 8 > 0.9);
  Alcotest.(check bool) "efficiency declines" true (eff 64 > eff 512);
  Alcotest.(check bool) "latency-bound at 512 ranks" true (eff 512 < 0.5)

let test_cg_collective_count () =
  let r = Emulator.run ~machine (Cg_program.program ~ranks:4 ()) in
  (* Two Allreduces per iteration. *)
  Alcotest.(check int) "2 x iterations collectives"
    (2 * Cg_program.default_config.Cg_program.iterations)
    r.Emulator.collectives

(* ---------------- Speedup_study ---------------- *)

let test_study_measure () =
  let points =
    Speedup_study.measure ~machine
      ~program:(fun ~ranks -> Heat.program ~ranks ())
      ~scales:[ 4; 2; 4 ]
  in
  (* Includes rank 1, deduplicates, sorts. *)
  Alcotest.(check (list int)) "scales" [ 1; 2; 4 ]
    (List.map (fun p -> p.Speedup_study.ranks) points);
  check_close ~tol:1e-9 "speedup(1) = 1" 1. (List.hd points).Speedup_study.speedup

let test_study_ascending_range () =
  let mk ranks speedup = { Speedup_study.ranks; job_time = 1.; speedup } in
  let pts = [ mk 1 1.; mk 2 1.9; mk 4 3.0; mk 8 2.5; mk 16 2.0 ] in
  Alcotest.(check (list int)) "cut after the peak" [ 1; 2; 4 ]
    (List.map (fun p -> p.Speedup_study.ranks) (Speedup_study.ascending_range pts))

let test_study_fit_recovers_quadratic () =
  let mk n = { Speedup_study.ranks = n;
               job_time = 1.;
               speedup = (0.5 *. float_of_int n) -. (1e-4 *. float_of_int (n * n)) } in
  let fit = Speedup_study.fit_quadratic (List.map mk [ 10; 50; 100; 500; 1000 ]) in
  check_close ~tol:1e-6 "kappa" 0.5 fit.Speedup_study.kappa;
  check_close ~tol:1. "n_star" 2500. fit.Speedup_study.n_star

let test_study_fit_rejects_flat () =
  (* Superlinear data fits with a positive quadratic coefficient: no peak
     exists and the fit must refuse. *)
  let mk n = { Speedup_study.ranks = n; job_time = 1.;
               speedup = float_of_int (n * n) /. 4. } in
  Alcotest.(check bool) "no curvature rejected" true
    (try
       ignore (Speedup_study.fit_quadratic (List.map mk [ 1; 2; 4; 8 ]));
       false
     with Invalid_argument _ -> true)

let test_study_estimate_kappa () =
  check_close ~tol:1e-9 "77/160"
    (77. /. 160.)
    (Speedup_study.estimate_kappa { Speedup_study.ranks = 160; job_time = 1.; speedup = 77. })

(* ---------------- properties ---------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"jacobi serialize/deserialize roundtrips" ~count:30
      (pair (int_range 3 24) small_int)
      (fun (size, seed) ->
        let g = Heat.Jacobi.create ~size in
        let rng = Ckpt_numerics.Rng.of_int seed in
        for _ = 1 to 10 do
          let i = Ckpt_numerics.Rng.int rng size and j = Ckpt_numerics.Rng.int rng size in
          Heat.Jacobi.set g i j (Ckpt_numerics.Rng.float rng *. 100.)
        done;
        Heat.Jacobi.equal g (Heat.Jacobi.deserialize (Heat.Jacobi.serialize g)));
    Test.make ~name:"heat decompose multiplies back" ~count:200 (int_range 1 2048)
      (fun ranks ->
        let px, py = Heat.decompose ~ranks in
        px * py = ranks && px <= py);
    Test.make ~name:"emulated heat speedup is positive and bounded" ~count:10
      (int_range 2 32)
      (fun ranks ->
        let t1 = (Emulator.run ~machine (Heat.program ~ranks:1 ())).Emulator.job_time in
        let tn = (Emulator.run ~machine (Heat.program ~ranks ())).Emulator.job_time in
        let s = t1 /. tn in
        s > 0.5 && s <= float_of_int ranks +. 1e-6) ]

let () =
  Alcotest.run "ckpt_mpi"
    [ ( "machine",
        [ Alcotest.test_case "compute" `Quick test_machine_compute;
          Alcotest.test_case "message" `Quick test_machine_message;
          Alcotest.test_case "log2 ceil" `Quick test_machine_log2_ceil;
          Alcotest.test_case "collective" `Quick test_machine_collective ] );
      ( "program",
        [ Alcotest.test_case "valid program" `Quick test_validate_good;
          Alcotest.test_case "bad rank" `Quick test_validate_bad_rank;
          Alcotest.test_case "self message" `Quick test_validate_self_message;
          Alcotest.test_case "unclosed irecv" `Quick test_validate_unclosed_irecv;
          Alcotest.test_case "collective mismatch" `Quick test_validate_collective_mismatch ] );
      ( "emulator",
        [ Alcotest.test_case "compute only" `Quick test_emulator_compute_only;
          Alcotest.test_case "pingpong timing" `Quick test_emulator_pingpong_timing;
          Alcotest.test_case "buffered send" `Quick test_emulator_send_is_buffered;
          Alcotest.test_case "waitall" `Quick test_emulator_waitall;
          Alcotest.test_case "barrier sync" `Quick test_emulator_barrier_sync;
          Alcotest.test_case "allreduce grows" `Quick test_emulator_allreduce_cost_grows;
          Alcotest.test_case "reduce/gather/alltoall" `Quick
            test_emulator_reduce_gather_alltoall;
          Alcotest.test_case "deadlock detection" `Quick test_emulator_deadlock;
          Alcotest.test_case "fifo channels" `Quick test_emulator_fifo_channels;
          Alcotest.test_case "invalid program" `Quick test_emulator_invalid_program_raises ] );
      ( "heat",
        [ Alcotest.test_case "decompose" `Quick test_heat_decompose;
          Alcotest.test_case "programs validate" `Quick test_heat_program_valid;
          Alcotest.test_case "speedup reasonable" `Quick test_heat_speedup_reasonable;
          Alcotest.test_case "paper calibration" `Quick test_heat_paper_calibration ] );
      ( "jacobi",
        [ Alcotest.test_case "converges to boundary" `Quick test_jacobi_converges_to_boundary;
          Alcotest.test_case "residual decreases" `Quick test_jacobi_residual_decreases;
          Alcotest.test_case "serialize roundtrip" `Quick test_jacobi_serialize_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_jacobi_deserialize_garbage ] );
      ( "nek",
        [ Alcotest.test_case "programs validate" `Quick test_nek_program_valid;
          Alcotest.test_case "speedup peaks" `Quick test_nek_speedup_peaks ] );
      ( "cg-program",
        [ Alcotest.test_case "programs validate" `Quick test_cg_program_valid;
          Alcotest.test_case "scaling shape" `Quick test_cg_scaling_shape;
          Alcotest.test_case "collective count" `Quick test_cg_collective_count ] );
      ( "speedup-study",
        [ Alcotest.test_case "measure" `Quick test_study_measure;
          Alcotest.test_case "ascending range" `Quick test_study_ascending_range;
          Alcotest.test_case "fit recovers quadratic" `Quick test_study_fit_recovers_quadratic;
          Alcotest.test_case "rejects flat" `Quick test_study_fit_rejects_flat;
          Alcotest.test_case "estimate kappa" `Quick test_study_estimate_kappa ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
