(* Tests for the storage substrate: GF(256), Reed-Solomon, object store,
   PFS model. *)

open Ckpt_storage
module Rng = Ckpt_numerics.Rng

(* ---------------- Gf256 ---------------- *)

let test_gf_add_is_xor () =
  Alcotest.(check int) "xor" (0xA5 lxor 0x3C) (Gf256.add 0xA5 0x3C);
  Alcotest.(check int) "self-inverse" 0 (Gf256.add 0x7F 0x7F);
  Alcotest.(check int) "sub = add" (Gf256.add 3 5) (Gf256.sub 3 5)

let test_gf_mul_identity_zero () =
  for a = 0 to 255 do
    Alcotest.(check int) "x * 1 = x" a (Gf256.mul a 1);
    Alcotest.(check int) "x * 0 = 0" 0 (Gf256.mul a 0)
  done

let test_gf_mul_commutative_sample () =
  let rng = Rng.of_int 1 in
  for _ = 1 to 2_000 do
    let a = Rng.int rng 256 and b = Rng.int rng 256 in
    Alcotest.(check int) "commutative" (Gf256.mul a b) (Gf256.mul b a)
  done

let test_gf_mul_associative_sample () =
  let rng = Rng.of_int 2 in
  for _ = 1 to 2_000 do
    let a = Rng.int rng 256 and b = Rng.int rng 256 and c = Rng.int rng 256 in
    Alcotest.(check int) "associative"
      (Gf256.mul (Gf256.mul a b) c)
      (Gf256.mul a (Gf256.mul b c))
  done

let test_gf_distributive_sample () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 2_000 do
    let a = Rng.int rng 256 and b = Rng.int rng 256 and c = Rng.int rng 256 in
    Alcotest.(check int) "distributive"
      (Gf256.mul a (Gf256.add b c))
      (Gf256.add (Gf256.mul a b) (Gf256.mul a c))
  done

let test_gf_inverse () =
  for a = 1 to 255 do
    Alcotest.(check int) "a * a^-1 = 1" 1 (Gf256.mul a (Gf256.inv a))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Gf256.inv 0))

let test_gf_div () =
  for a = 1 to 255 do
    Alcotest.(check int) "a / a = 1" 1 (Gf256.div a a);
    Alcotest.(check int) "0 / a = 0" 0 (Gf256.div 0 a)
  done;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Gf256.div 1 0))

let test_gf_pow () =
  Alcotest.(check int) "a^0 = 1" 1 (Gf256.pow 7 0);
  Alcotest.(check int) "a^1 = a" 7 (Gf256.pow 7 1);
  Alcotest.(check int) "a^2 = a*a" (Gf256.mul 7 7) (Gf256.pow 7 2);
  Alcotest.(check int) "0^0 = 1" 1 (Gf256.pow 0 0);
  Alcotest.(check int) "0^k = 0" 0 (Gf256.pow 0 5)

let test_gf_exp_log_roundtrip () =
  for a = 1 to 255 do
    Alcotest.(check int) "exp(log a) = a" a (Gf256.exp_table (Gf256.log_table a))
  done

(* ---------------- Reed_solomon ---------------- *)

let make_shards rng ~count ~len =
  Array.init count (fun _ -> Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)))

let test_rs_systematic () =
  let codec = Reed_solomon.create ~data:4 ~parity:2 in
  Alcotest.(check int) "data" 4 (Reed_solomon.data_shards codec);
  Alcotest.(check int) "parity" 2 (Reed_solomon.parity_shards codec);
  Alcotest.(check int) "total" 6 (Reed_solomon.total_shards codec);
  let rows = Reed_solomon.parity_rows codec in
  Alcotest.(check int) "parity rows" 2 (Array.length rows);
  Alcotest.(check int) "row width" 4 (Array.length rows.(0))

let test_rs_no_erasure () =
  let rng = Rng.of_int 4 in
  let codec = Reed_solomon.create ~data:3 ~parity:2 in
  let data = make_shards rng ~count:3 ~len:64 in
  let parity = Reed_solomon.encode codec data in
  let shards =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  let decoded = Reed_solomon.decode codec shards in
  Array.iteri
    (fun i d -> Alcotest.(check bool) "identical" true (Bytes.equal d data.(i)))
    decoded

let test_rs_data_erasures () =
  let rng = Rng.of_int 5 in
  let codec = Reed_solomon.create ~data:4 ~parity:2 in
  let data = make_shards rng ~count:4 ~len:100 in
  let parity = Reed_solomon.encode codec data in
  let shards =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  shards.(0) <- None;
  shards.(2) <- None;
  let decoded = Reed_solomon.decode codec shards in
  Array.iteri
    (fun i d -> Alcotest.(check bool) "recovered" true (Bytes.equal d data.(i)))
    decoded

let test_rs_mixed_erasures () =
  let rng = Rng.of_int 6 in
  let codec = Reed_solomon.create ~data:5 ~parity:3 in
  let data = make_shards rng ~count:5 ~len:33 in
  let parity = Reed_solomon.encode codec data in
  let shards =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  shards.(1) <- None;
  shards.(4) <- None;
  shards.(6) <- None;
  (* one parity gone too *)
  let decoded = Reed_solomon.decode codec shards in
  Array.iteri
    (fun i d -> Alcotest.(check bool) "recovered" true (Bytes.equal d data.(i)))
    decoded

let test_rs_too_many_erasures () =
  let rng = Rng.of_int 7 in
  let codec = Reed_solomon.create ~data:3 ~parity:1 in
  let data = make_shards rng ~count:3 ~len:8 in
  let parity = Reed_solomon.encode codec data in
  let shards =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  shards.(0) <- None;
  shards.(1) <- None;
  Alcotest.(check bool) "refuses" true
    (try
       ignore (Reed_solomon.decode codec shards);
       false
     with Invalid_argument _ -> true)

let test_rs_verify () =
  let rng = Rng.of_int 8 in
  let codec = Reed_solomon.create ~data:4 ~parity:2 in
  let data = make_shards rng ~count:4 ~len:16 in
  let parity = Reed_solomon.encode codec data in
  Alcotest.(check bool) "good parity verifies" true (Reed_solomon.verify codec ~data ~parity);
  Bytes.set parity.(0) 3 'X';
  Alcotest.(check bool) "corrupt parity fails" false
    (Reed_solomon.verify codec ~data ~parity)

let test_rs_empty_payload () =
  let codec = Reed_solomon.create ~data:2 ~parity:1 in
  let data = [| Bytes.empty; Bytes.empty |] in
  let parity = Reed_solomon.encode codec data in
  Alcotest.(check int) "empty parity" 0 (Bytes.length parity.(0))

let test_rs_create_validation () =
  let expect_invalid f =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid (fun () -> Reed_solomon.create ~data:0 ~parity:1);
  expect_invalid (fun () -> Reed_solomon.create ~data:1 ~parity:0);
  expect_invalid (fun () -> Reed_solomon.create ~data:200 ~parity:60)

let test_rs_mismatched_lengths () =
  let codec = Reed_solomon.create ~data:2 ~parity:1 in
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Reed_solomon.encode codec [| Bytes.create 4; Bytes.create 5 |]);
       false
     with Invalid_argument _ -> true)

let test_rs_more_parity_than_data () =
  let rng = Rng.of_int 9 in
  let codec = Reed_solomon.create ~data:2 ~parity:4 in
  let data = make_shards rng ~count:2 ~len:50 in
  let parity = Reed_solomon.encode codec data in
  let shards =
    Array.append (Array.map Option.some data) (Array.map Option.some parity)
  in
  (* Erase BOTH data shards and two parity shards: still decodable. *)
  shards.(0) <- None;
  shards.(1) <- None;
  shards.(3) <- None;
  shards.(5) <- None;
  let decoded = Reed_solomon.decode codec shards in
  Array.iteri
    (fun i d -> Alcotest.(check bool) "recovered" true (Bytes.equal d data.(i)))
    decoded

let test_rs_single_data_shard () =
  let codec = Reed_solomon.create ~data:1 ~parity:2 in
  let data = [| Bytes.of_string "solo" |] in
  let parity = Reed_solomon.encode codec data in
  let shards = [| None; Some parity.(0); Some parity.(1) |] in
  let decoded = Reed_solomon.decode codec shards in
  Alcotest.(check string) "replicated" "solo" (Bytes.to_string decoded.(0))

(* ---------------- Object_store ---------------- *)

let test_store_put_get () =
  let s = Object_store.create ~nodes:4 in
  Object_store.put_local s ~node:1 ~key:"a" (Bytes.of_string "hello");
  (match Object_store.get_local s ~node:1 ~key:"a" with
   | Some b -> Alcotest.(check string) "value" "hello" (Bytes.to_string b)
   | None -> Alcotest.fail "expected value");
  Alcotest.(check bool) "absent elsewhere" true
    (Object_store.get_local s ~node:2 ~key:"a" = None)

let test_store_copies_are_isolated () =
  let s = Object_store.create ~nodes:2 in
  let buf = Bytes.of_string "abc" in
  Object_store.put_local s ~node:0 ~key:"k" buf;
  Bytes.set buf 0 'X';
  (match Object_store.get_local s ~node:0 ~key:"k" with
   | Some b -> Alcotest.(check string) "store unaffected by caller mutation" "abc"
                 (Bytes.to_string b)
   | None -> Alcotest.fail "expected value");
  (* and mutating the returned copy must not corrupt the store *)
  (match Object_store.get_local s ~node:0 ~key:"k" with
   | Some b -> Bytes.set b 0 'Y'
   | None -> ());
  match Object_store.get_local s ~node:0 ~key:"k" with
  | Some b -> Alcotest.(check string) "still intact" "abc" (Bytes.to_string b)
  | None -> Alcotest.fail "expected value"

let test_store_crash () =
  let s = Object_store.create ~nodes:3 in
  Object_store.put_local s ~node:0 ~key:"k" (Bytes.of_string "x");
  Object_store.put_local s ~node:1 ~key:"k" (Bytes.of_string "y");
  Object_store.put_pfs s ~key:"k" (Bytes.of_string "z");
  Object_store.crash_node s ~node:0;
  Alcotest.(check bool) "node 0 wiped" true (Object_store.get_local s ~node:0 ~key:"k" = None);
  Alcotest.(check bool) "node 1 intact" true (Object_store.get_local s ~node:1 ~key:"k" <> None);
  Alcotest.(check bool) "pfs survives" true (Object_store.get_pfs s ~key:"k" <> None)

let test_store_keys_and_bytes () =
  let s = Object_store.create ~nodes:1 in
  Object_store.put_local s ~node:0 ~key:"b" (Bytes.create 10);
  Object_store.put_local s ~node:0 ~key:"a" (Bytes.create 5);
  Alcotest.(check (list string)) "sorted keys" [ "a"; "b" ]
    (Object_store.local_keys s ~node:0);
  Alcotest.(check int) "payload bytes" 15 (Object_store.local_bytes s ~node:0);
  Object_store.delete_local s ~node:0 ~key:"a";
  Alcotest.(check int) "after delete" 10 (Object_store.local_bytes s ~node:0)

let test_store_pfs_namespace () =
  let s = Object_store.create ~nodes:1 in
  Object_store.put_pfs s ~key:"f1" (Bytes.of_string "1");
  Object_store.put_pfs s ~key:"f0" (Bytes.of_string "0");
  Alcotest.(check (list string)) "pfs keys" [ "f0"; "f1" ] (Object_store.pfs_keys s);
  Object_store.delete_pfs s ~key:"f0";
  Alcotest.(check (list string)) "after delete" [ "f1" ] (Object_store.pfs_keys s)

(* ---------------- Pfs_model ---------------- *)

let test_pfs_monotone_in_procs () =
  let m = Pfs_model.default in
  let t1 = Pfs_model.write_time m ~procs:128 ~bytes_per_proc:1e8 in
  let t2 = Pfs_model.write_time m ~procs:1024 ~bytes_per_proc:1e8 in
  Alcotest.(check bool) "more writers slower" true (t2 > t1)

let test_pfs_scalable_flat () =
  let m = Pfs_model.scalable in
  let t1 = Pfs_model.write_time m ~procs:128 ~bytes_per_proc:1e8 in
  let t2 = Pfs_model.write_time m ~procs:1024 ~bytes_per_proc:1e8 in
  Alcotest.(check (float 1e-9)) "per-writer bandwidth keeps time flat" t1 t2

let test_pfs_table2_shape () =
  (* The default PFS model should land near the Table II level-4 column. *)
  let m = Pfs_model.default in
  let t128 = Pfs_model.write_time m ~procs:128 ~bytes_per_proc:1e7 in
  let t1024 = Pfs_model.write_time m ~procs:1024 ~bytes_per_proc:1e7 in
  Alcotest.(check bool) "128 cores in 5-12 s" true (t128 > 5. && t128 < 12.);
  Alcotest.(check bool) "1024 cores in 20-35 s" true (t1024 > 20. && t1024 < 35.)

(* ---------------- properties ---------------- *)

let qcheck_tests =
  let open QCheck in
  [ Test.make ~name:"RS roundtrip under any <=parity erasures" ~count:150
      (quad (int_range 1 8) (int_range 1 4) (int_range 0 64) small_int)
      (fun (k, m, len, seed) ->
        let rng = Rng.of_int seed in
        let codec = Reed_solomon.create ~data:k ~parity:m in
        let data = make_shards rng ~count:k ~len in
        let parity = Reed_solomon.encode codec data in
        let shards =
          Array.append (Array.map Option.some data) (Array.map Option.some parity)
        in
        (* Erase up to m random shards. *)
        let erasures = Rng.int rng (m + 1) in
        let erased = ref 0 in
        while !erased < erasures do
          let i = Rng.int rng (k + m) in
          if shards.(i) <> None then begin
            shards.(i) <- None;
            incr erased
          end
        done;
        let decoded = Reed_solomon.decode codec shards in
        Array.for_all2 Bytes.equal decoded data);
    Test.make ~name:"gf256 mul/div inverse" ~count:1000
      (pair (int_range 0 255) (int_range 1 255))
      (fun (a, b) -> Gf256.mul (Gf256.div a b) b = a);
    Test.make ~name:"object store get returns what was put" ~count:200
      (pair (int_range 0 7) string)
      (fun (node, payload) ->
        let s = Object_store.create ~nodes:8 in
        Object_store.put_local s ~node ~key:"k" (Bytes.of_string payload);
        match Object_store.get_local s ~node ~key:"k" with
        | Some b -> String.equal (Bytes.to_string b) payload
        | None -> false) ]

let () =
  Alcotest.run "ckpt_storage"
    [ ( "gf256",
        [ Alcotest.test_case "add is xor" `Quick test_gf_add_is_xor;
          Alcotest.test_case "mul identity/zero" `Quick test_gf_mul_identity_zero;
          Alcotest.test_case "mul commutative" `Quick test_gf_mul_commutative_sample;
          Alcotest.test_case "mul associative" `Quick test_gf_mul_associative_sample;
          Alcotest.test_case "distributive" `Quick test_gf_distributive_sample;
          Alcotest.test_case "inverse" `Quick test_gf_inverse;
          Alcotest.test_case "division" `Quick test_gf_div;
          Alcotest.test_case "power" `Quick test_gf_pow;
          Alcotest.test_case "exp/log roundtrip" `Quick test_gf_exp_log_roundtrip ] );
      ( "reed-solomon",
        [ Alcotest.test_case "systematic shape" `Quick test_rs_systematic;
          Alcotest.test_case "no erasure" `Quick test_rs_no_erasure;
          Alcotest.test_case "data erasures" `Quick test_rs_data_erasures;
          Alcotest.test_case "mixed erasures" `Quick test_rs_mixed_erasures;
          Alcotest.test_case "too many erasures" `Quick test_rs_too_many_erasures;
          Alcotest.test_case "verify" `Quick test_rs_verify;
          Alcotest.test_case "empty payload" `Quick test_rs_empty_payload;
          Alcotest.test_case "create validation" `Quick test_rs_create_validation;
          Alcotest.test_case "length mismatch" `Quick test_rs_mismatched_lengths;
          Alcotest.test_case "more parity than data" `Quick test_rs_more_parity_than_data;
          Alcotest.test_case "single data shard" `Quick test_rs_single_data_shard ] );
      ( "object-store",
        [ Alcotest.test_case "put/get" `Quick test_store_put_get;
          Alcotest.test_case "copies isolated" `Quick test_store_copies_are_isolated;
          Alcotest.test_case "crash" `Quick test_store_crash;
          Alcotest.test_case "keys and bytes" `Quick test_store_keys_and_bytes;
          Alcotest.test_case "pfs namespace" `Quick test_store_pfs_namespace ] );
      ( "pfs-model",
        [ Alcotest.test_case "monotone in writers" `Quick test_pfs_monotone_in_procs;
          Alcotest.test_case "scalable flat" `Quick test_pfs_scalable_flat;
          Alcotest.test_case "table2 shape" `Quick test_pfs_table2_shape ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
