(* Tests for the cluster topology model. *)

open Ckpt_topology

let default () = Topology.create Topology.default_spec

let test_counts () =
  let t = default () in
  Alcotest.(check int) "nodes" 128 (Topology.node_count t);
  Alcotest.(check int) "cores" 1024 (Topology.core_count t)

let test_rank_mapping () =
  let t = default () in
  Alcotest.(check int) "rank 0" 0 (Topology.node_of_rank t 0);
  Alcotest.(check int) "rank 7" 0 (Topology.node_of_rank t 7);
  Alcotest.(check int) "rank 8" 1 (Topology.node_of_rank t 8);
  Alcotest.(check int) "last rank" 127 (Topology.node_of_rank t 1023)

let test_ranks_of_node_inverse () =
  let t = default () in
  for node = 0 to Topology.node_count t - 1 do
    List.iter
      (fun r -> Alcotest.(check int) "roundtrip" node (Topology.node_of_rank t r))
      (Topology.ranks_of_node t node)
  done

let test_partner_properties () =
  let t = default () in
  for node = 0 to Topology.node_count t - 1 do
    let p = Topology.partner_of t node in
    Alcotest.(check bool) "partner differs" true (p <> node);
    Alcotest.(check bool) "partner on another board" true (not (Topology.adjacent t node p))
  done

let test_partner_single_board () =
  (* A cluster smaller than one board still gets a distinct partner. *)
  let t =
    Topology.create
      { Topology.nodes = 3; cores_per_node = 1; board_size = 4; rs_group_size = 3;
        rs_parity = 1 }
  in
  for node = 0 to 2 do
    Alcotest.(check bool) "distinct" true (Topology.partner_of t node <> node)
  done

let test_rs_groups_partition () =
  let t = default () in
  let seen = Hashtbl.create 128 in
  for g = 0 to Topology.rs_group_count t - 1 do
    List.iter
      (fun n ->
        Alcotest.(check bool) "no overlap" false (Hashtbl.mem seen n);
        Hashtbl.replace seen n ();
        Alcotest.(check int) "group_of consistent" g (Topology.rs_group_of t n))
      (Topology.rs_group_members t g)
  done;
  Alcotest.(check int) "partition covers all nodes" (Topology.node_count t)
    (Hashtbl.length seen)

let test_boards () =
  let t = default () in
  Alcotest.(check int) "board of node 0" 0 (Topology.board_of t 0);
  Alcotest.(check int) "board of node 3" 0 (Topology.board_of t 3);
  Alcotest.(check int) "board of node 4" 1 (Topology.board_of t 4);
  Alcotest.(check bool) "adjacent same board" true (Topology.adjacent t 0 3);
  Alcotest.(check bool) "not adjacent across boards" false (Topology.adjacent t 3 4)

let test_recovery_level_none () =
  let t = default () in
  Alcotest.(check int) "no crash -> level 1" 1 (Topology.min_recovery_level t ~failed:[])

let test_recovery_level_single () =
  let t = default () in
  Alcotest.(check int) "single node -> level 2" 2
    (Topology.min_recovery_level t ~failed:[ 17 ])

let test_recovery_level_board () =
  let t = default () in
  (* A whole board: partners are one board over, so partner copies
     survive. *)
  Alcotest.(check int) "board -> level 2" 2
    (Topology.min_recovery_level t ~failed:[ 8; 9; 10; 11 ])

let test_recovery_level_partner_pair () =
  let t = default () in
  let victim = 20 in
  let partner = Topology.partner_of t victim in
  Alcotest.(check int) "partner pair -> level 3" 3
    (Topology.min_recovery_level t ~failed:[ victim; partner ])

let test_recovery_level_rs_overflow () =
  let t = default () in
  (* Lose more nodes in one RS group than the parity tolerates, including
     a partner pair so level 2 is also out. *)
  let group0 = Topology.rs_group_members t 0 in
  let victims = List.filteri (fun i _ -> i < 3) group0 in
  let partner = Topology.partner_of t (List.hd victims) in
  let failed = partner :: victims in
  Alcotest.(check int) "too many RS losses -> level 4" 4
    (Topology.min_recovery_level t ~failed)

let test_recovery_level_duplicates () =
  let t = default () in
  Alcotest.(check int) "duplicates collapse" 2
    (Topology.min_recovery_level t ~failed:[ 5; 5; 5 ])

let test_spec_validation () =
  Alcotest.(check bool) "bad parity rejected" true
    (try
       ignore
         (Topology.create
            { Topology.nodes = 8; cores_per_node = 1; board_size = 2; rs_group_size = 4;
              rs_parity = 4 });
       false
     with Assert_failure _ -> true)

let qcheck_tests =
  let open QCheck in
  let topo = default () in
  let node_gen = int_range 0 (Topology.node_count topo - 1) in
  [ Test.make ~name:"recovery level monotone under more failures" ~count:300
      (pair (list_of_size (Gen.int_range 0 6) node_gen)
         (list_of_size (Gen.int_range 0 6) node_gen))
      (fun (a, b) ->
        Topology.min_recovery_level topo ~failed:a
        <= Topology.min_recovery_level topo ~failed:(a @ b));
    Test.make ~name:"recovery level in 1..4" ~count:300
      (list_of_size (Gen.int_range 0 20) node_gen)
      (fun failed ->
        let l = Topology.min_recovery_level topo ~failed in
        l >= 1 && l <= 4);
    Test.make ~name:"partner mapping stays in range" ~count:300
      node_gen
      (fun n ->
        let p = Topology.partner_of topo n in
        p >= 0 && p < Topology.node_count topo) ]

let () =
  Alcotest.run "ckpt_topology"
    [ ( "structure",
        [ Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "rank mapping" `Quick test_rank_mapping;
          Alcotest.test_case "ranks_of_node inverse" `Quick test_ranks_of_node_inverse;
          Alcotest.test_case "partner properties" `Quick test_partner_properties;
          Alcotest.test_case "partner single board" `Quick test_partner_single_board;
          Alcotest.test_case "rs groups partition" `Quick test_rs_groups_partition;
          Alcotest.test_case "boards" `Quick test_boards;
          Alcotest.test_case "spec validation" `Quick test_spec_validation ] );
      ( "recovery-level",
        [ Alcotest.test_case "no crash" `Quick test_recovery_level_none;
          Alcotest.test_case "single node" `Quick test_recovery_level_single;
          Alcotest.test_case "whole board" `Quick test_recovery_level_board;
          Alcotest.test_case "partner pair" `Quick test_recovery_level_partner_pair;
          Alcotest.test_case "rs overflow" `Quick test_recovery_level_rs_overflow;
          Alcotest.test_case "duplicates" `Quick test_recovery_level_duplicates ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests) ]
