type t = {
  queue : (t -> unit) Event_queue.t;
  mutable clock : float;
  mutable stop_requested : bool;
}

type event_id = Event_queue.handle

exception Time_in_the_past of { now : float; requested : float }

let create ?(start_time = 0.) () =
  { queue = Event_queue.create (); clock = start_time; stop_requested = false }

let now t = t.clock

let schedule_at t ~time k =
  if time < t.clock then raise (Time_in_the_past { now = t.clock; requested = time });
  Event_queue.push t.queue ~time k

let schedule_after t ~delay k =
  assert (delay >= 0.);
  schedule_at t ~time:(t.clock +. delay) k

let cancel t id = Event_queue.cancel t.queue id
let pending t = Event_queue.size t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, k) ->
      t.clock <- time;
      k t;
      true

let run ?until t =
  t.stop_requested <- false;
  let continue () =
    if t.stop_requested then false
    else begin
      match (Event_queue.peek_time t.queue, until) with
      | None, _ -> false
      | Some next, Some limit when next > limit ->
          t.clock <- limit;
          false
      | Some _, _ -> true
    end
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when (not t.stop_requested) && Event_queue.is_empty t.queue && t.clock < limit ->
      (* Queue drained before the horizon: still advance the clock. *)
      t.clock <- limit
  | _ -> ()

let stop t = t.stop_requested <- true
let stopped t = t.stop_requested
