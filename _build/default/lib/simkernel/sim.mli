(** Discrete-event simulation engine.

    A thin scheduler over {!Event_queue}: callbacks are scheduled at
    absolute or relative simulated times and executed in timestamp order.
    Both the checkpoint/restart simulator ([ckpt_sim]) and the MPI program
    emulator ([ckpt_mpi]) run on this engine.

    The engine is strictly sequential and deterministic: ties are broken by
    scheduling order, and no wall-clock time is consulted. *)

type t

type event_id
(** Identifies a scheduled callback for cancellation. *)

exception Time_in_the_past of { now : float; requested : float }

val create : ?start_time:float -> unit -> t
(** [create ()] starts the clock at [start_time] (default [0.]). *)

val now : t -> float
(** Current simulated time. *)

val schedule_at : t -> time:float -> (t -> unit) -> event_id
(** [schedule_at t ~time k] runs [k] at absolute time [time].
    @raise Time_in_the_past if [time < now t]. *)

val schedule_after : t -> delay:float -> (t -> unit) -> event_id
(** [schedule_after t ~delay k] runs [k] at [now t +. delay].
    Requires [delay >= 0.]. *)

val cancel : t -> event_id -> unit
(** Cancel a pending callback; no-op if it already ran. *)

val pending : t -> int
(** Number of scheduled, unfired callbacks. *)

val step : t -> bool
(** [step t] executes the earliest pending callback; [false] when none are
    left.  The clock jumps to the callback's timestamp. *)

val run : ?until:float -> t -> unit
(** [run t] executes callbacks until the queue drains, or — given [until] —
    until the next event is strictly later than [until] (the clock is then
    advanced to [until]). *)

val stop : t -> unit
(** Request that {!run} return after the current callback completes.
    Pending events remain queued. *)

val stopped : t -> bool
