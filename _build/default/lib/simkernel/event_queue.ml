type handle = int

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array option;
  (* [heap] is lazily allocated because the element type has no default. *)
  mutable len : int;
  mutable next_seq : int;
  pending : (handle, unit) Hashtbl.t;  (* scheduled, not yet fired/cancelled *)
  cancelled : (handle, unit) Hashtbl.t;  (* cancelled but still in the heap *)
}

let create () =
  { heap = None; len = 0; next_seq = 0;
    pending = Hashtbl.create 64; cancelled = Hashtbl.create 64 }

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  match t.heap with
  | None ->
      let arr = Array.make 16 entry in
      t.heap <- Some arr;
      arr
  | Some arr ->
      if t.len >= Array.length arr then begin
        let bigger = Array.make (2 * Array.length arr) entry in
        Array.blit arr 0 bigger 0 t.len;
        t.heap <- Some bigger;
        bigger
      end
      else arr

let sift_up arr i =
  let item = arr.(i) in
  let rec loop i =
    if i = 0 then i
    else begin
      let parent = (i - 1) / 2 in
      if less item arr.(parent) then begin
        arr.(i) <- arr.(parent);
        loop parent
      end
      else i
    end
  in
  let pos = loop i in
  arr.(pos) <- item

let sift_down arr len i =
  let item = arr.(i) in
  let rec loop i =
    let left = (2 * i) + 1 in
    if left >= len then i
    else begin
      let right = left + 1 in
      let child = if right < len && less arr.(right) arr.(left) then right else left in
      if less arr.(child) item then begin
        arr.(i) <- arr.(child);
        loop child
      end
      else i
    end
  in
  let pos = loop i in
  arr.(pos) <- item

let push t ~time payload =
  assert (Float.is_finite time);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let entry = { time; seq; payload } in
  let arr = grow t entry in
  arr.(t.len) <- entry;
  sift_up arr t.len;
  t.len <- t.len + 1;
  Hashtbl.replace t.pending seq ();
  seq

let cancel t h =
  if Hashtbl.mem t.pending h then begin
    Hashtbl.remove t.pending h;
    Hashtbl.replace t.cancelled h ()
  end

let is_cancelled t h = Hashtbl.mem t.cancelled h

let remove_top t arr =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    arr.(0) <- arr.(t.len);
    sift_down arr t.len 0
  end

let rec pop t =
  if t.len = 0 then None
  else begin
    match t.heap with
    | None -> None
    | Some arr ->
        let top = arr.(0) in
        remove_top t arr;
        if Hashtbl.mem t.cancelled top.seq then begin
          Hashtbl.remove t.cancelled top.seq;
          pop t
        end
        else begin
          Hashtbl.remove t.pending top.seq;
          Some (top.time, top.payload)
        end
  end

let rec peek_time t =
  if t.len = 0 then None
  else begin
    match t.heap with
    | None -> None
    | Some arr ->
        let top = arr.(0) in
        if Hashtbl.mem t.cancelled top.seq then begin
          (* Drop the dead head so repeated peeks stay cheap. *)
          Hashtbl.remove t.cancelled top.seq;
          remove_top t arr;
          peek_time t
        end
        else Some top.time
  end

let size t = Hashtbl.length t.pending
let is_empty t = size t = 0

let clear t =
  t.len <- 0;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.cancelled
