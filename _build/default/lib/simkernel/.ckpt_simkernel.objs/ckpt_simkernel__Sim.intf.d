lib/simkernel/sim.mli:
