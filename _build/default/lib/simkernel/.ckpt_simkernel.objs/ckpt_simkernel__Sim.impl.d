lib/simkernel/sim.ml: Event_queue
