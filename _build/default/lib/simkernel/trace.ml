type entry = { time : float; tag : string; detail : string }

type t = {
  mutable items : entry list;  (* reverse order *)
  mutable count : int;
  mutable enabled : bool;
}

let create ?capacity:_ ?(enabled = true) () = { items = []; count = 0; enabled }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let record t ~time ~tag detail =
  if t.enabled then begin
    t.items <- { time; tag; detail } :: t.items;
    t.count <- t.count + 1
  end

let recordf t ~time ~tag fmt =
  Format.kasprintf
    (fun detail -> if t.enabled then record t ~time ~tag detail)
    fmt

let length t = t.count
let entries t = List.rev t.items

let find_all t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let clear t =
  t.items <- [];
  t.count <- 0

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "%12.3f  %-12s %s@\n" e.time e.tag e.detail)
    (entries t)
