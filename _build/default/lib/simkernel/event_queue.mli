(** Priority queue of timestamped events.

    A binary min-heap keyed by [(time, sequence)]: events at equal times are
    delivered in insertion order, which keeps simulations deterministic.
    Cancellation is lazy — cancelled entries are skipped on extraction — so
    both {!push} and {!cancel} are cheap. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> handle
(** [push q ~time payload] schedules [payload] at [time].
    Requires [time] to be finite. *)

val cancel : 'a t -> handle -> unit
(** [cancel q h] removes the event; a no-op if it already fired or was
    already cancelled. *)

val is_cancelled : 'a t -> handle -> bool

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the earliest live event, or [None] when the
    queue is empty. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest live event without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled) events. *)

val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drop every pending event. *)
