(** Simulation trace recording.

    Collects timestamped, tagged events during a simulated run.  Traces are
    consumed by tests (asserting event orderings, e.g. that a recovery
    always follows a failure) and can be dumped for debugging. *)

type t

type entry = {
  time : float;
  tag : string;
  detail : string;
}

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [create ()] makes an enabled trace.  Disabled traces drop every record,
    so instrumentation can stay in hot paths. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> time:float -> tag:string -> string -> unit
(** [record t ~time ~tag detail] appends an entry (no-op when disabled). *)

val recordf :
  t -> time:float -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!record}; the message is only built when the
    trace is enabled. *)

val length : t -> int
val entries : t -> entry list
(** Entries in recording order. *)

val find_all : t -> tag:string -> entry list
(** Entries carrying the given tag, in order. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One line per entry: [time tag detail]. *)
