module Optimizer = Ckpt_model.Optimizer
module Level = Ckpt_model.Level
module Replication = Ckpt_sim.Replication
module Stats = Ckpt_numerics.Stats

type row = {
  solution : string;
  case : string;
  simulated_wct_days : float option;
  simulated_efficiency : float option;
  model_wct_days : float;
  model_efficiency : float;
  paper_wct_days : float;
  paper_efficiency : float;
}

let compute ?(runs = 30) () =
  List.concat
    (List.mapi
       (fun case_idx case ->
         let problem =
           Paper_data.eval_problem ~levels:Level.constant_pfs_case ~te_core_days:2e6
             ~case ()
         in
         List.map
           (fun (s : Solutions.solved) ->
             let a = s.Solutions.aggregate in
             let simulated =
               if a.Replication.completed_runs = 0 then (None, None)
               else
                 ( Some (a.Replication.wall_clock.Stats.mean /. 86400.),
                   Some a.Replication.mean_efficiency )
             in
             let paper_wct =
               (List.assoc s.Solutions.name Paper_data.table4_wct_days).(case_idx)
             in
             let paper_eff =
               (List.assoc s.Solutions.name Paper_data.table4_efficiency).(case_idx)
             in
             { solution = s.Solutions.name;
               case;
               simulated_wct_days = fst simulated;
               simulated_efficiency = snd simulated;
               model_wct_days = s.Solutions.plan.Optimizer.wall_clock /. 86400.;
               model_efficiency = s.Solutions.plan.Optimizer.efficiency;
               paper_wct_days = paper_wct;
               paper_efficiency = paper_eff })
           (Solutions.solve_and_simulate ~runs problem)
         @ [ (* The paper's 890-day SL(ori-scale) wall-clocks correspond to
                aborting checkpoint-write semantics: a failure during one of
                the 2,000-second PFS writes destroys it.  Report that
                variant too. *)
             (let plan = Optimizer.sl_ori_scale problem in
              let a =
                Solutions.simulate_plan ~runs
                  ~semantics:Ckpt_sim.Run_config.default_semantics problem plan
              in
              let simulated =
                if a.Replication.completed_runs = 0 then (None, None)
                else
                  ( Some (a.Replication.wall_clock.Stats.mean /. 86400.),
                    Some a.Replication.mean_efficiency )
              in
              { solution = "SL(ori-scale)/abort";
                case;
                simulated_wct_days = fst simulated;
                simulated_efficiency = snd simulated;
                model_wct_days = plan.Optimizer.wall_clock /. 86400.;
                model_efficiency = plan.Optimizer.efficiency;
                paper_wct_days = (List.assoc "SL(ori-scale)" Paper_data.table4_wct_days).(case_idx);
                paper_efficiency =
                  (List.assoc "SL(ori-scale)" Paper_data.table4_efficiency).(case_idx) }) ])
       Paper_data.table4_cases)

let run ppf =
  Render.section ppf
    "Table IV: constant PFS checkpoint cost (50/100/200/2000 s, Te = 2m core-days)";
  let rows = compute () in
  let cell = function None -> "> horizon" | Some v -> Printf.sprintf "%.1f" v in
  let eff_cell = function None -> "-" | Some v -> Printf.sprintf "%.3f" v in
  Render.table ppf
    ~headers:
      [ "case"; "solution"; "WCT sim"; "WCT model"; "WCT paper"; "eff sim";
        "eff model"; "eff paper" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.case; r.solution; cell r.simulated_wct_days;
             Printf.sprintf "%.1f" r.model_wct_days;
             Printf.sprintf "%.1f" r.paper_wct_days;
             eff_cell r.simulated_efficiency;
             Printf.sprintf "%.3f" r.model_efficiency;
             Printf.sprintf "%.3f" r.paper_efficiency ])
         rows);
  Format.fprintf ppf
    "@\nWCT in days.  Model rows assume no failures strike checkpoints or@\n\
     recoveries, so they undercut the simulation when PFS writes take 2,000 s.@\n"
