module Optimizer = Ckpt_model.Optimizer

type verdict = Exact | Close | Deviates

type line = { item : string; paper : string; measured : string; verdict : verdict }

let verdict_of_rel ?(exact = 0.01) ?(close = 0.5) ~expected actual =
  if expected = 0. then if actual = 0. then Exact else Deviates
  else begin
    let rel = Float.abs (actual -. expected) /. Float.abs expected in
    if rel <= exact then Exact else if rel <= close then Close else Deviates
  end

let f1 = Printf.sprintf "%.1f"
let f3 = Printf.sprintf "%.3f"

let fig3_lines () =
  List.concat_map
    (fun linear_cost ->
      let r = Fig3.compute ~linear_cost in
      let tag = if linear_cost then "linear cost" else "constant cost" in
      [ { item = Printf.sprintf "Fig.3 x* (%s)" tag;
          paper = Printf.sprintf "%.0f" r.Fig3.paper_x;
          measured = f1 r.Fig3.x_star;
          verdict = verdict_of_rel ~expected:r.Fig3.paper_x r.Fig3.x_star };
        { item = Printf.sprintf "Fig.3 N* (%s)" tag;
          paper = Printf.sprintf "%.0f" r.Fig3.paper_n;
          measured = Printf.sprintf "%.0f" r.Fig3.n_star;
          verdict = verdict_of_rel ~expected:r.Fig3.paper_n r.Fig3.n_star } ])
    [ false; true ]

let table2_lines () =
  List.map
    (fun r ->
      { item = Printf.sprintf "Table II eps level %d" r.Table2.level;
        paper = f3 r.Table2.paper_eps;
        measured = f3 r.Table2.eps;
        verdict = verdict_of_rel ~exact:0.03 ~expected:r.Table2.paper_eps r.Table2.eps })
    (Table2.compute ())

let fig4_line () =
  let diff = Fig4.max_diff (Fig4.compute ~runs:10 ()) in
  { item = "Fig.4 engine agreement";
    paper = "< 4% (vs real cluster)";
    measured = Printf.sprintf "%.1f%% (event vs tick)" (100. *. diff);
    verdict = (if diff < 0.04 then Close else Deviates) }

let table3_lines () =
  List.map
    (fun r ->
      { item = Printf.sprintf "Table III ML N* (%s)" r.Table3.case;
        paper = Printf.sprintf "%.0fk" (r.Table3.paper_ml /. 1e3);
        measured = Printf.sprintf "%.0fk" (r.Table3.ml_scale /. 1e3);
        verdict = verdict_of_rel ~expected:r.Table3.paper_ml r.Table3.ml_scale })
    (Table3.compute ())

let fig5_lines runs =
  let t = Time_analysis.compute ~runs ~te_core_days:3e6 () in
  let ranges = Time_analysis.improvements t in
  let paper = [ ("SL(opt-scale)", "58-84%"); ("ML(ori-scale)", "7-26%");
                ("SL(ori-scale)", "79-88%") ] in
  List.map
    (fun (solution, per_case) ->
      let lo = List.fold_left Float.min 1. per_case in
      let hi = List.fold_left Float.max 0. per_case in
      { item = Printf.sprintf "Fig.5 improvement vs %s" solution;
        paper = List.assoc solution paper;
        measured = Printf.sprintf "%.0f-%.0f%%" (100. *. lo) (100. *. hi);
        verdict = (if lo > 0. then Close else Deviates) })
    ranges

let convergence_line () =
  let rows = Convergence.outer_loop_rows () in
  let outers = List.map (fun r -> r.Convergence.outer) rows in
  let all_converged = List.for_all (fun r -> r.Convergence.converged) rows in
  { item = "Algorithm 1 outer iterations";
    paper = "7-15 at delta=1e-12";
    measured =
      Printf.sprintf "%d-%d, all convergent"
        (List.fold_left Int.min max_int outers)
        (List.fold_left Int.max 0 outers);
    verdict = (if all_converged then Close else Deviates) }

let costmodel_line () =
  let err = Costmodel.max_error (Costmodel.compare_costs ()) in
  { item = "Cost model vs Table II";
    paper = "measured (30% jitter band)";
    measured = Printf.sprintf "max error %.0f%%" (100. *. err);
    verdict = (if err < 0.35 then Close else Deviates) }

let compute ?(runs = 20) () =
  fig3_lines () @ table2_lines ()
  @ [ fig4_line () ]
  @ table3_lines () @ fig5_lines runs
  @ [ convergence_line (); costmodel_line () ]

let verdict_cell = function
  | Exact -> "exact"
  | Close -> "close"
  | Deviates -> "DEVIATES"

let to_markdown lines =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "# Reproduction report (generated)\n\n";
  Buffer.add_string buf "| Item | Paper | Measured | Verdict |\n|---|---|---|---|\n";
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s |\n" l.item l.paper l.measured
           (verdict_cell l.verdict)))
    lines;
  let count v = List.length (List.filter (fun l -> l.verdict = v) lines) in
  Buffer.add_string buf
    (Printf.sprintf "\n%d exact, %d close, %d deviating of %d checks.\n" (count Exact)
       (count Close) (count Deviates) (List.length lines));
  Buffer.contents buf

let run ?runs ppf = Format.fprintf ppf "%s@." (to_markdown (compute ?runs ()))
