(** Fig. 3 — numerical confirmation of the single-level optimum.

    Reproduces the paper's Section III-C study: Te = 4,000 core-days on
    the Heat Distribution speedup (kappa = 0.46, N_star = 100,000),
    mu = 0.005 N.  (a) constant C = R = 5 s — optimum at x* = 797,
    N* = 81,746; (b) linear C = R = 5 + 0.005 N — optimum at x* = 140,
    N* = 20,215.  The experiment solves for the optimum, then sweeps
    E(T_w) along each axis to confirm it is the minimum. *)

type result = {
  linear_cost : bool;
  x_star : float;
  n_star : float;
  wall_clock : float;  (** E(T_w) at the optimum, seconds *)
  iterations : int;
  x_sweep : (float * float) list;  (** (x, E(T_w)) at N = N* *)
  n_sweep : (float * float) list;  (** (N, E(T_w)) at x = x* *)
  paper_x : float;
  paper_n : float;
}

val compute : linear_cost:bool -> result
val sweep_is_minimal : result -> bool
(** The optimum beats every swept point on both axes. *)

val run : Format.formatter -> unit
