(** The paper's published numbers and experiment presets, kept verbatim so
    every experiment can print paper-vs-measured columns. *)

(** {1 Table II — FTI checkpoint overheads on Fusion (seconds)} *)

val table2_scales : float array
(** 128, 256, 384, 512, 1,024 cores. *)

val table2_costs : float array array
(** [table2_costs.(level - 1)] are the measured costs across
    {!table2_scales} for levels 1–4. *)

val table2_fitted : (float * float) array
(** The paper's least-squares coefficients [(eps_i, alpha_i)]:
    (0.866, 0), (2.586, 0), (3.886, 0), (5.5, 0.0212). *)

(** {1 Evaluation presets (Section IV)} *)

val kappa : float
(** Speedup slope of the Heat Distribution application (0.46). *)

val alloc : float
(** Resource allocation period used in our evaluation (60 s; the paper
    calls [A] "a constant period, far shorter than the execution"). *)

val eval_speedup : unit -> Ckpt_model.Speedup.t
(** Quadratic Eq. (12) speedup with [kappa = 0.46], [N_star = 1e6]. *)

val eval_problem :
  ?levels:Ckpt_model.Level.t array -> te_core_days:float -> case:string -> unit ->
  Ckpt_model.Optimizer.problem
(** The evaluation problem for a workload (core-days) and a failure-rate
    case string like ["16-12-8-4"] (rates per day at [N_b = 1e6]). *)

val cases : string list
(** The six failure-rate cases of Figs. 5–7. *)

val table4_cases : string list
(** The three cases of Table IV. *)

(** {1 Fig. 3 — single-level numerical study} *)

val fig3_problem : linear_cost:bool -> Ckpt_model.Single_level.params
(** Te = 4,000 core-days, quadratic speedup kappa = 0.46, N_star = 1e5,
    mu = 0.005 N, [eta0 + A = 5]; constant C = R = 5 s, or linear
    C = R = 5 + 0.005 N. *)

val fig3_expected : linear_cost:bool -> float * float
(** The paper's optima [(x_star, n_star)]: (797, 81,746) and
    (140, 20,215). *)

(** {1 Published results used for comparison columns} *)

val table3_ml_scales : float array
(** ML(opt-scale) optimized scales for the six cases (cores). *)

val table3_sl_scales : float array
(** SL(opt-scale) optimized scales for the six cases (cores). *)

val table4_wct_days : (string * float array) list
(** Paper Table IV block 1: solution name -> WCT (days) for the three
    cases. *)

val table4_efficiency : (string * float array) list
(** Paper Table IV block 1 efficiencies. *)

val solution_names : string list
(** ML(opt-scale); SL(opt-scale); ML(ori-scale); SL(ori-scale) — in the
    paper's presentation order. *)
