(** Shared driver for the paper's time-portion analyses (Figs. 5 and 6):
    four solutions x six failure cases, each simulated over replicated
    runs, reporting the stacked portions (productive / checkpoint /
    restart+allocation / rollback) and the wall-clock improvements of
    ML(opt-scale) over the other three solutions. *)

type cell = {
  solution : string;
  case : string;
  plan : Ckpt_model.Optimizer.plan;
  aggregate : Ckpt_sim.Replication.aggregate;
}

type t = {
  te_core_days : float;
  cells : cell list;  (** row-major: for each case, the four solutions *)
}

val compute : ?runs:int -> ?cases:string list -> te_core_days:float -> unit -> t
(** Default cases: the six of the paper.  Default 100 runs per cell. *)

val improvements : t -> (string * float list) list
(** For each non-ML(opt-scale) solution: per-case wall-clock reduction of
    ML(opt-scale) relative to it, [1 - ML / other].  Cells whose runs hit
    the horizon are compared against the horizon (a lower bound on the
    improvement). *)

val print : Format.formatter -> t -> unit
val run_fig5 : Format.formatter -> unit
(** Te = 3e6 core-days (Fig. 5). *)

val run_fig6 : Format.formatter -> unit
(** Te = 1e7 core-days (Fig. 6). *)
