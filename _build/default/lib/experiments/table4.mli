(** Table IV — the constant-PFS-cost variant (Blue Waters-style storage):
    level overheads 50 / 100 / 200 / 2,000 s, Te = 2e6 core-days,
    N_star = 1e6, three failure cases.

    The paper prints two unlabeled row blocks; we reproduce block 1 as
    the simulated means and block 2 as the analytic model predictions
    (interpretation recorded in DESIGN.md), with the paper's block-1
    numbers alongside. *)

type row = {
  solution : string;
  case : string;
  simulated_wct_days : float option;  (** [None] when runs hit the horizon *)
  simulated_efficiency : float option;
  model_wct_days : float;
  model_efficiency : float;
  paper_wct_days : float;
  paper_efficiency : float;
}

val compute : ?runs:int -> unit -> row list
(** Default 30 runs per cell (the SL(ori-scale) cells are slow: the
    2,000-second PFS checkpoints make segments fail frequently, just as
    the paper's 890-day wall-clocks indicate). *)

val run : Format.formatter -> unit
