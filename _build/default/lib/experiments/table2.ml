module Overhead = Ckpt_model.Overhead

type fit_row = {
  level : int;
  eps : float;
  alpha : float;
  paper_eps : float;
  paper_alpha : float;
}

let compute () =
  List.init 4 (fun idx ->
      let level = idx + 1 in
      let costs = Paper_data.table2_costs.(idx) in
      (* 1 ms/core of fitted slope is measurement noise for levels whose
         medium is node-local; the paper classifies those as constant. *)
      let fitted =
        Overhead.fit ~snap:1e-3 ~scales:Paper_data.table2_scales ~costs ()
      in
      let paper_eps, paper_alpha = Paper_data.table2_fitted.(idx) in
      { level;
        eps = fitted.Overhead.eps;
        alpha = fitted.Overhead.alpha;
        paper_eps;
        paper_alpha })

let run ppf =
  Render.section ppf "Table II: FTI overhead characterization (least-squares re-fit)";
  Render.table ppf
    ~headers:[ "level"; "eps (fit)"; "alpha (fit)"; "eps (paper)"; "alpha (paper)" ]
    ~rows:
      (List.map
         (fun r ->
           [ string_of_int r.level; Printf.sprintf "%.3f" r.eps;
             Printf.sprintf "%.4f" r.alpha; Printf.sprintf "%.3f" r.paper_eps;
             Printf.sprintf "%.4f" r.paper_alpha ])
         (compute ()))
