module Optimizer = Ckpt_model.Optimizer

type row = {
  case : string;
  ml_scale : float;
  sl_scale : float;
  paper_ml : float;
  paper_sl : float;
}

let compute () =
  List.mapi
    (fun i case ->
      let problem = Paper_data.eval_problem ~te_core_days:3e6 ~case () in
      let ml = Optimizer.ml_opt_scale problem in
      let sl = Optimizer.sl_opt_scale problem in
      { case;
        ml_scale = ml.Optimizer.n;
        sl_scale = sl.Optimizer.n;
        paper_ml = Paper_data.table3_ml_scales.(i);
        paper_sl = Paper_data.table3_sl_scales.(i) })
    Paper_data.cases

let run ppf =
  Render.section ppf "Table III: optimized execution scales (Te = 3m core-days)";
  Render.table ppf
    ~headers:[ "case"; "ML N* (ours)"; "ML N* (paper)"; "SL N* (ours)"; "SL N* (paper)" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.case;
             Printf.sprintf "%.0fk" (r.ml_scale /. 1e3);
             Printf.sprintf "%.0fk" (r.paper_ml /. 1e3);
             Printf.sprintf "%.1fk" (r.sl_scale /. 1e3);
             Printf.sprintf "%.1fk" (r.paper_sl /. 1e3) ])
         (compute ()));
  Format.fprintf ppf
    "@\nBoth solutions shrink the scale below N* = 1m, more aggressively under@\n\
     higher failure rates - the paper's qualitative finding.@\n"
