(** Table II — FTI checkpoint overhead characterization.

    Re-fits the overhead laws [C_i(N) = eps_i + alpha_i N] to the paper's
    measured data by least squares (the paper's own procedure) and
    compares the recovered coefficients with the published
    (0.866, 0) / (2.586, 0) / (3.886, 0) / (5.5, 0.0212). *)

type fit_row = {
  level : int;
  eps : float;
  alpha : float;
  paper_eps : float;
  paper_alpha : float;
}

val compute : unit -> fit_row list
(** Levels 1–3 are fitted with [snap] large enough to classify them as
    constant (the paper's reading of the data); level 4 keeps its slope. *)

val run : Format.formatter -> unit
