module Optimizer = Ckpt_model.Optimizer
module Replication = Ckpt_sim.Replication
module Stats = Ckpt_numerics.Stats
module S = Ckpt_mpi.Speedup_study

let write_file ~dir name emit =
  let path = Filename.concat dir name in
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try emit ppf
   with e ->
     close_out oc;
     raise e);
  Format.pp_print_flush ppf ();
  close_out oc;
  path

let f = Printf.sprintf "%.8g"

let fig1_csv ppf =
  Render.csv ppf
    ~headers:[ "cores"; "failure_free_seconds"; "with_checkpoints_seconds" ]
    ~rows:
      (List.map
         (fun p ->
           [ f p.Fig1.n; f p.Fig1.failure_free; f p.Fig1.with_checkpoints ])
         (Fig1.series ()))

let fig2_csv study ppf =
  Render.csv ppf
    ~headers:[ "ranks"; "job_time_seconds"; "speedup" ]
    ~rows:
      (List.map
         (fun p -> [ string_of_int p.S.ranks; f p.S.job_time; f p.S.speedup ])
         study.Fig2.points)

let fig3_csv ~linear_cost ppf =
  let r = Fig3.compute ~linear_cost in
  Render.csv ppf
    ~headers:[ "x"; "wall_seconds_at_nstar"; "n"; "wall_seconds_at_xstar" ]
    ~rows:
      (List.map2
         (fun (x, ex) (n, en) -> [ f x; f ex; f n; f en ])
         r.Fig3.x_sweep r.Fig3.n_sweep)

let table2_csv ppf =
  let rows =
    List.map
      (fun c ->
        [ string_of_int c.Costmodel.level; string_of_int c.Costmodel.scale;
          f c.Costmodel.predicted; f c.Costmodel.measured; f c.Costmodel.error ])
      (Costmodel.compare_costs ())
  in
  Render.csv ppf
    ~headers:[ "level"; "cores"; "predicted_seconds"; "measured_seconds"; "rel_error" ]
    ~rows

let table3_csv ppf =
  Render.csv ppf
    ~headers:[ "case"; "ml_scale"; "ml_scale_paper"; "sl_scale"; "sl_scale_paper" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.Table3.case; f r.Table3.ml_scale; f r.Table3.paper_ml;
             f r.Table3.sl_scale; f r.Table3.paper_sl ])
         (Table3.compute ()))

let sensitivity_csv ppf =
  Render.csv ppf
    ~headers:[ "parameter"; "wall_clock_elasticity"; "scale_elasticity" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.Ckpt_model.Sensitivity.name;
             f r.Ckpt_model.Sensitivity.wall_clock_elasticity;
             f r.Ckpt_model.Sensitivity.scale_elasticity ])
         (Sensitivity_study.compute ()))

let write_analytic ~dir =
  [ write_file ~dir "fig1_tradeoff.csv" fig1_csv;
    write_file ~dir "fig2_heat.csv" (fig2_csv (Fig2.heat ()));
    write_file ~dir "fig2_nek.csv" (fig2_csv (Fig2.nek ()));
    write_file ~dir "fig3_constant.csv" (fig3_csv ~linear_cost:false);
    write_file ~dir "fig3_linear.csv" (fig3_csv ~linear_cost:true);
    write_file ~dir "table2_costmodel.csv" table2_csv;
    write_file ~dir "table3_scales.csv" table3_csv;
    write_file ~dir "sensitivity.csv" sensitivity_csv ]

let time_analysis_csv t ppf =
  let rows =
    List.map
      (fun (c : Time_analysis.cell) ->
        let a = c.Time_analysis.aggregate in
        [ c.Time_analysis.case; c.Time_analysis.solution;
          f c.Time_analysis.plan.Optimizer.n;
          f a.Replication.wall_clock.Stats.mean;
          f a.Replication.productive; f a.Replication.checkpoint;
          f (a.Replication.restart +. a.Replication.allocation);
          f a.Replication.rollback; f a.Replication.mean_efficiency ])
      t.Time_analysis.cells
  in
  Render.csv ppf
    ~headers:
      [ "case"; "solution"; "cores"; "wall_seconds"; "productive_seconds";
        "checkpoint_seconds"; "restart_seconds"; "rollback_seconds"; "efficiency" ]
    ~rows

let write_simulated ?(runs = 20) ~dir () =
  [ write_file ~dir "fig5_portions.csv"
      (time_analysis_csv (Time_analysis.compute ~runs ~te_core_days:3e6 ()));
    write_file ~dir "fig6_portions.csv"
      (time_analysis_csv (Time_analysis.compute ~runs ~te_core_days:1e7 ())) ]
