module Optimizer = Ckpt_model.Optimizer
module Level = Ckpt_model.Level
module Speedup = Ckpt_model.Speedup
module Failure_spec = Ckpt_failures.Failure_spec
module Run_config = Ckpt_sim.Run_config
module Stats = Ckpt_numerics.Stats

type point = {
  level : int;
  factor : float;
  event_wall : float;
  tick_wall : float;
  diff : float;
}

(* A 1,024-core validation workload: ~8.7 h failure-free, with the Fusion
   level overheads and roughly 20 failures per run. *)
let problem () =
  { Optimizer.te = 1024. *. 4. *. 3600.;
    speedup = Speedup.quadratic ~kappa:Paper_data.kappa ~n_star:1e6;
    levels = Level.fti_fusion;
    alloc = 10.;
    spec = Failure_spec.of_string ~baseline_scale:1024. "24-18-12-6" }

let compute ?(runs = 30) () =
  let problem = problem () in
  let base_plan = Optimizer.ml_ori_scale ~n:1024. problem in
  let base_xs = base_plan.Optimizer.xs in
  let point level factor =
    let xs = Array.copy base_xs in
    xs.(level - 1) <- Float.max 1. (xs.(level - 1) *. factor);
    let config =
      Run_config.v ~te:problem.Optimizer.te ~speedup:problem.Optimizer.speedup
        ~levels:problem.Optimizer.levels ~alloc:problem.Optimizer.alloc
        ~spec:problem.Optimizer.spec ~xs ~n:1024. ()
    in
    let mean engine =
      Stats.mean (Array.init runs (fun i -> (engine ~seed:(1000 + i) config).Ckpt_sim.Outcome.wall_clock))
    in
    let event_wall = mean (fun ~seed config -> Ckpt_sim.Engine.run ~seed config) in
    let tick_wall = mean (fun ~seed config -> Ckpt_sim.Tick_engine.run ~seed config) in
    { level; factor; event_wall; tick_wall;
      diff = Float.abs (event_wall -. tick_wall) /. tick_wall }
  in
  List.concat_map
    (fun level -> List.map (point level) [ 0.5; 1.; 2. ])
    [ 1; 2; 3; 4 ]

let max_diff points = List.fold_left (fun acc p -> Float.max acc p.diff) 0. points

let run ppf =
  Render.section ppf "Figure 4: event-driven vs tick-driven simulator validation";
  let points = compute () in
  Render.table ppf
    ~headers:[ "level"; "interval factor"; "event wall (s)"; "tick wall (s)"; "diff" ]
    ~rows:
      (List.map
         (fun p ->
           [ string_of_int p.level; Printf.sprintf "%.1fx" p.factor;
             Printf.sprintf "%.0f" p.event_wall; Printf.sprintf "%.0f" p.tick_wall;
             Render.pct p.diff ])
         points);
  Format.fprintf ppf "@\nmax difference: %s (paper reports < 4%% vs real cluster)@\n"
    (Render.pct (max_diff points))
