module Optimizer = Ckpt_model.Optimizer
module Run_config = Ckpt_sim.Run_config
module Replication = Ckpt_sim.Replication

type solved = {
  name : string;
  plan : Optimizer.plan;
  aggregate : Replication.aggregate;
}

let default_horizon = 2000. *. 86400.

let plans problem =
  [ ("ML(opt-scale)", Optimizer.ml_opt_scale problem);
    ("SL(opt-scale)", Optimizer.sl_opt_scale problem);
    ("ML(ori-scale)", Optimizer.ml_ori_scale problem);
    ("SL(ori-scale)", Optimizer.sl_ori_scale problem) ]

let expand_sl_plan (problem : Optimizer.problem) (plan : Optimizer.plan) =
  let nlevels = Array.length problem.Optimizer.levels in
  assert (Array.length plan.Optimizer.xs = 1);
  let xs = Array.make nlevels 1. in
  xs.(nlevels - 1) <- plan.Optimizer.xs.(0);
  { plan with Optimizer.xs }

let simulate_plan ?runs ?(max_wall_clock = default_horizon)
    ?(semantics = Run_config.paper_semantics) problem (plan : Optimizer.plan) =
  let problem =
    if Array.length plan.Optimizer.xs = 1 && Array.length problem.Optimizer.levels > 1
    then Optimizer.single_level_problem problem
    else problem
  in
  let config = Run_config.of_plan ~semantics ~max_wall_clock ~problem ~plan () in
  Replication.run ?runs config

let solve_and_simulate ?runs ?max_wall_clock ?semantics problem =
  List.map
    (fun (name, plan) ->
      { name; plan;
        aggregate = simulate_plan ?runs ?max_wall_clock ?semantics problem plan })
    (plans problem)
