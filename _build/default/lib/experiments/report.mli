(** Machine-generated reproduction report.

    Re-derives the paper-vs-measured comparison live (the curated version
    is EXPERIMENTS.md) and renders it as Markdown: Fig. 3 optima, the
    Table II coefficients, Fig. 4 engine agreement, Table III scales,
    the Fig. 5 improvement ranges, convergence counts and the cost-model
    error — each with a pass/deviation verdict against tolerance bands. *)

type verdict = Exact | Close | Deviates

type line = {
  item : string;
  paper : string;
  measured : string;
  verdict : verdict;
}

val compute : ?runs:int -> unit -> line list
(** Default 20 simulation runs per Fig. 5 cell. *)

val to_markdown : line list -> string

val run : ?runs:int -> Format.formatter -> unit
(** Render the Markdown to the formatter. *)
