(** SCR-style Markov model vs the paper's Algorithm 1 (related work [12]).

    The paper's Section V notes that SCR's Markov model optimizes the
    checkpoint cadence but "did not take into account the impact of the
    number of processes/cores".  This experiment quantifies that gap:
    the SCR cadence at the full machine, the SCR cadence at Algorithm 1's
    optimized scale, and Algorithm 1 itself — model-predicted and
    simulated. *)

type row = {
  label : string;
  scale : float;
  model_days : float;
  simulated_days : float option;  (** [None] when no run completed *)
}

val compute : ?runs:int -> ?case:string -> unit -> row list
val run : Format.formatter -> unit
