lib/experiments/table4.ml: Array Ckpt_model Ckpt_numerics Ckpt_sim Format List Paper_data Printf Render Solutions
