lib/experiments/render.ml: Float Format Int List Printf String
