lib/experiments/scr_comparison.mli: Format
