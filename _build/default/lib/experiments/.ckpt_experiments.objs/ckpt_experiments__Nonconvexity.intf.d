lib/experiments/nonconvexity.mli: Format
