lib/experiments/fig2.ml: Ckpt_mpi Format List Printf Render
