lib/experiments/paper_data.mli: Ckpt_model
