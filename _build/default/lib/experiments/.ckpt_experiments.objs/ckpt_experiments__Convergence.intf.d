lib/experiments/convergence.mli: Format
