lib/experiments/table3.ml: Array Ckpt_model Format List Paper_data Printf Render
