lib/experiments/solutions.mli: Ckpt_model Ckpt_sim
