lib/experiments/table2.ml: Array Ckpt_model List Paper_data Printf Render
