lib/experiments/costmodel.ml: Array Ckpt_fti Ckpt_model Float Format List Paper_data Printf Render
