lib/experiments/solutions.ml: Array Ckpt_model Ckpt_sim List
