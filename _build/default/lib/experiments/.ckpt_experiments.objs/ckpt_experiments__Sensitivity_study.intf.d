lib/experiments/sensitivity_study.mli: Ckpt_model Format
