lib/experiments/fig4.ml: Array Ckpt_failures Ckpt_model Ckpt_numerics Ckpt_sim Float Format List Paper_data Printf Render
