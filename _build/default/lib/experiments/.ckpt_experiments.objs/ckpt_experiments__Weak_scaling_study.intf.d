lib/experiments/weak_scaling_study.mli: Format
