lib/experiments/render.mli: Format
