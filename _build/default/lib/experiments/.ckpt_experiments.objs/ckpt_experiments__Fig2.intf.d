lib/experiments/fig2.mli: Ckpt_mpi Format
