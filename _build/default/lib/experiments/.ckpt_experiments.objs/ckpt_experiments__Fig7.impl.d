lib/experiments/fig7.ml: Ckpt_sim Format List Paper_data Printf Render Time_analysis
