lib/experiments/scr_comparison.ml: Ckpt_model Ckpt_numerics Ckpt_sim Format List Paper_data Printf Render Solutions
