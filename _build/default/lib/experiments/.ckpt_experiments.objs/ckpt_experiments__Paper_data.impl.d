lib/experiments/paper_data.ml: Ckpt_failures Ckpt_model
