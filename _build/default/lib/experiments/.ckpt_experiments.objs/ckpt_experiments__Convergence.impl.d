lib/experiments/convergence.ml: Ckpt_model Format List Paper_data Printf Render
