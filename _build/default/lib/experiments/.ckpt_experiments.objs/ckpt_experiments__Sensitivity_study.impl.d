lib/experiments/sensitivity_study.ml: Ckpt_model Format List Paper_data Printf Render
