lib/experiments/csv_export.ml: Ckpt_model Ckpt_mpi Ckpt_numerics Ckpt_sim Costmodel Fig1 Fig2 Fig3 Filename Format List Printf Render Sensitivity_study Table3 Time_analysis
