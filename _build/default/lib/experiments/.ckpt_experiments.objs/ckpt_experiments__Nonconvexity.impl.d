lib/experiments/nonconvexity.ml: Ckpt_model Format List Render
