lib/experiments/time_analysis.mli: Ckpt_model Ckpt_sim Format
