lib/experiments/weak_scaling_study.ml: Array Ckpt_failures Ckpt_model Format List Paper_data Printf Render
