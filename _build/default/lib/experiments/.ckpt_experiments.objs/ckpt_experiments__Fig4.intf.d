lib/experiments/fig4.mli: Format
