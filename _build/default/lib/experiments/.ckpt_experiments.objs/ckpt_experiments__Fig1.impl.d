lib/experiments/fig1.ml: Ckpt_model Format List Paper_data Printf Render
