lib/experiments/ablations.ml: Array Ckpt_failures Ckpt_model Ckpt_numerics Ckpt_sim Float List Paper_data Printf Render Solutions String
