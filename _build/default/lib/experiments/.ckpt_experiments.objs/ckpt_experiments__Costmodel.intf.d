lib/experiments/costmodel.mli: Ckpt_model Format
