lib/experiments/csv_export.mli:
