lib/experiments/fig3.ml: Ckpt_model Float Format List Paper_data Printf Render
