lib/experiments/report.ml: Buffer Ckpt_model Convergence Costmodel Fig3 Fig4 Float Format Int List Printf Table2 Table3 Time_analysis
