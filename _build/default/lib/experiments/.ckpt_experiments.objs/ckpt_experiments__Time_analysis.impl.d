lib/experiments/time_analysis.ml: Ckpt_model Ckpt_numerics Ckpt_sim Format List Paper_data Printf Render Solutions String
