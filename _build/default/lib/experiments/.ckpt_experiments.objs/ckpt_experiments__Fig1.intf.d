lib/experiments/fig1.mli: Format
