module SC = Ckpt_model.Self_consistent

type summary = { scanned : int; nonconvex : (float * float) list }

let params =
  { SC.te = 100. *. 86400.;
    kappa = 1.;
    eps0 = 10.;
    alpha0 = 0.01;
    eta0 = 60.;
    beta0 = 1e-3;
    alloc = 60.;
    lambda = 2e-4 }

let grid () =
  let xs = List.init 30 (fun i -> 1.5 +. (float_of_int i *. 3.)) in
  let ns = List.init 40 (fun i -> 50. *. (1.3 ** float_of_int i)) in
  (xs, ns)

let compute () =
  let xs, ns = grid () in
  let nonconvex = SC.find_nonconvex_region params ~xs ~ns in
  { scanned = List.length xs * List.length ns; nonconvex }

let run ppf =
  Render.section ppf "Section III-A: non-convexity of the direct formulation (Eq. 6)";
  let s = compute () in
  Format.fprintf ppf
    "scanned %d grid points of the self-consistent single-level E(Tw);@\n\
     %d points have a negative second derivative in x or N.@\n"
    s.scanned (List.length s.nonconvex);
  (match s.nonconvex with
   | (x, n) :: _ ->
       Format.fprintf ppf "example: x=%.1f, N=%.0f -> d2E/dx2=%.3g, d2E/dN2=%.3g@\n" x n
         (SC.second_derivative_x params ~x ~n)
         (SC.second_derivative_n params ~x ~n)
   | [] -> ());
  Format.fprintf ppf
    "This is the paper's motivation for Algorithm 1: fixing the expected@\n\
     failure counts restores convexity and the outer loop removes the fix.@\n"
