(** Section III-A — why the direct formulation is hard.

    The paper argues that the self-consistent wall-clock form (Eq. 6) is
    not convex in [x] and [N], which rules out one-shot convex
    optimization and motivates Algorithm 1.  This experiment exhibits the
    claim numerically: it scans a grid and reports points where a second
    derivative is negative, alongside a region where both are positive. *)

type summary = {
  scanned : int;
  nonconvex : (float * float) list;  (** (x, N) points with a negative
                                         second derivative *)
}

val compute : unit -> summary
val run : Format.formatter -> unit
