let pad cell width = cell ^ String.make (Int.max 0 (width - String.length cell)) ' '

let table ppf ~headers ~rows =
  let ncols =
    List.fold_left (fun acc row -> Int.max acc (List.length row)) (List.length headers) rows
  in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left
      (fun acc row -> Int.max acc (String.length (cell row i)))
      (String.length (cell headers i))
      rows
  in
  let widths = List.init ncols width in
  let print_row row =
    List.iteri
      (fun i w ->
        if i > 0 then Format.fprintf ppf "  ";
        Format.fprintf ppf "%s" (pad (cell row i) w))
      widths;
    Format.fprintf ppf "@\n"
  in
  print_row headers;
  List.iteri
    (fun i w ->
      if i > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%s" (String.make w '-'))
    widths;
  Format.fprintf ppf "@\n";
  List.iter print_row rows

let csv_escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let csv ppf ~headers ~rows =
  let line fields = Format.fprintf ppf "%s@\n" (String.concat "," (List.map csv_escape fields)) in
  line headers;
  List.iter line rows

let section ppf title =
  Format.fprintf ppf "@\n=== %s ===@\n@\n" title

let float_cell ?(decimals = 2) v =
  if v = 0. then "0"
  else begin
    let m = Float.abs v in
    if m >= 1e7 || m < 1e-3 then Printf.sprintf "%.3e" v
    else Printf.sprintf "%.*f" decimals v
  end

let days seconds = Printf.sprintf "%.2f" (seconds /. 86400.)
let pct ratio = Printf.sprintf "%.1f%%" (100. *. ratio)
