(** The four compared checkpoint strategies (paper Section IV-A), solved
    and simulated for a given evaluation problem.  Shared by the Fig. 5/6/7
    and Table III/IV experiments. *)

type solved = {
  name : string;  (** e.g. "ML(opt-scale)" *)
  plan : Ckpt_model.Optimizer.plan;
  aggregate : Ckpt_sim.Replication.aggregate;
}

val plans :
  Ckpt_model.Optimizer.problem -> (string * Ckpt_model.Optimizer.plan) list
(** The four plans in the paper's order: ML(opt-scale), SL(opt-scale),
    ML(ori-scale), SL(ori-scale).  SL plans are returned with their
    interval count and scale mapped onto the PFS level of the full
    hierarchy ([xs] of the other levels set to 1). *)

val expand_sl_plan :
  Ckpt_model.Optimizer.problem -> Ckpt_model.Optimizer.plan -> Ckpt_model.Optimizer.plan
(** Lift a single-level plan (one-element [xs]) onto the full hierarchy:
    the PFS keeps its interval count, the other levels are unused. *)

val solve_and_simulate :
  ?runs:int ->
  ?max_wall_clock:float ->
  ?semantics:Ckpt_sim.Run_config.semantics ->
  Ckpt_model.Optimizer.problem ->
  solved list
(** Solve the four strategies and simulate each (default 100 runs,
    horizon 2,000 days, {!Ckpt_sim.Run_config.paper_semantics}).  SL strategies are simulated on a hierarchy
    where only the PFS level is active, with the aggregated failure rate
    attached to it — every failure needs a PFS recovery there. *)

val simulate_plan :
  ?runs:int ->
  ?max_wall_clock:float ->
  ?semantics:Ckpt_sim.Run_config.semantics ->
  Ckpt_model.Optimizer.problem ->
  Ckpt_model.Optimizer.plan ->
  Ckpt_sim.Replication.aggregate
(** Simulate one plan for one problem.  Single-level plans (singleton
    [xs]) are run against the single-level collapse of the problem. *)

val default_horizon : float
(** Simulation safety horizon (2,000 days in seconds). *)
