(** Fig. 2 — measured speedups and quadratic fits.

    Emulates the Heat Distribution program (a) and the Nek5000
    eddy_uv-like program (b) across scales, fits the paper's Eq. (12)
    quadratic through the origin on the ascending range, and reports the
    fitted [kappa] next to the paper's values (quick estimate 77/160 ~
    0.48, least-squares 0.46). *)

type study = {
  application : string;
  points : Ckpt_mpi.Speedup_study.point list;
  fit : Ckpt_mpi.Speedup_study.fit;
  kappa_quick_estimate : float;  (** speedup/ranks at the largest mid-size point *)
}

val heat : ?scales:int list -> unit -> study
val nek : ?scales:int list -> unit -> study
val run : Format.formatter -> unit
