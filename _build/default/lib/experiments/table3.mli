(** Table III — optimized execution scales of the opt-scale solutions
    (Te = 3e6 core-days, N_star = 1e6 cores), compared with the paper's
    published scales. *)

type row = {
  case : string;
  ml_scale : float;
  sl_scale : float;
  paper_ml : float;
  paper_sl : float;
}

val compute : unit -> row list
val run : Format.formatter -> unit
