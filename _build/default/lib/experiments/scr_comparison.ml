module Optimizer = Ckpt_model.Optimizer
module Markov = Ckpt_model.Markov
module Run_config = Ckpt_sim.Run_config
module Replication = Ckpt_sim.Replication
module Stats = Ckpt_numerics.Stats

type row = {
  label : string;
  scale : float;
  model_days : float;
  simulated_days : float option;
}

let simulate ?(runs = 30) problem ~xs ~n =
  let config =
    Run_config.v ~semantics:Run_config.paper_semantics
      ~max_wall_clock:Solutions.default_horizon ~te:problem.Optimizer.te
      ~speedup:problem.Optimizer.speedup ~levels:problem.Optimizer.levels
      ~alloc:problem.Optimizer.alloc ~spec:problem.Optimizer.spec ~xs ~n ()
  in
  let a = Replication.run ~runs config in
  if a.Replication.completed_runs = 0 then None
  else Some (a.Replication.wall_clock.Stats.mean /. 86400.)

let compute ?runs ?(case = "16-12-8-4") () =
  let problem = Paper_data.eval_problem ~te_core_days:3e6 ~case () in
  let mp =
    { Markov.te = problem.Optimizer.te;
      speedup = problem.Optimizer.speedup;
      levels = problem.Optimizer.levels;
      alloc = problem.Optimizer.alloc;
      spec = problem.Optimizer.spec }
  in
  let alg1 = Optimizer.ml_opt_scale problem in
  let alg1_full = Optimizer.ml_ori_scale problem in
  let scr_full = Markov.optimize mp ~n:1e6 in
  let scr_opt = Markov.optimize mp ~n:alg1.Optimizer.n in
  [ { label = "SCR cadence @ full machine";
      scale = 1e6;
      model_days = scr_full.Markov.wall_clock /. 86400.;
      simulated_days = simulate ?runs problem ~xs:scr_full.Markov.xs ~n:1e6 };
    { label = "Algorithm 1 @ full machine (ML ori-scale)";
      scale = 1e6;
      model_days = alg1_full.Optimizer.wall_clock /. 86400.;
      simulated_days = simulate ?runs problem ~xs:alg1_full.Optimizer.xs ~n:1e6 };
    { label = "SCR cadence @ Algorithm 1's N*";
      scale = alg1.Optimizer.n;
      model_days = scr_opt.Markov.wall_clock /. 86400.;
      simulated_days =
        simulate ?runs problem ~xs:scr_opt.Markov.xs ~n:alg1.Optimizer.n };
    { label = "Algorithm 1 (ML opt-scale, this paper)";
      scale = alg1.Optimizer.n;
      model_days = alg1.Optimizer.wall_clock /. 86400.;
      simulated_days = simulate ?runs problem ~xs:alg1.Optimizer.xs ~n:alg1.Optimizer.n } ]

let run ppf =
  Render.section ppf "SCR Markov model vs Algorithm 1 (related work [12], case 16-12-8-4)";
  Render.table ppf
    ~headers:[ "strategy"; "cores"; "model (days)"; "simulated (days)" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.label; Printf.sprintf "%.0fk" (r.scale /. 1e3);
             Printf.sprintf "%.1f" r.model_days;
             (match r.simulated_days with
              | None -> "> horizon"
              | Some d -> Printf.sprintf "%.1f" d) ])
         (compute ()));
  Format.fprintf ppf
    "@\nSCR's cadence is competitive once the scale is right, but it has no@\n\
     mechanism to find that scale - the paper's core contribution.@\n"
