module Speedup = Ckpt_model.Speedup
module Level = Ckpt_model.Level
module Overhead = Ckpt_model.Overhead
module Optimizer = Ckpt_model.Optimizer
module Single_level = Ckpt_model.Single_level
module Scale_fn = Ckpt_model.Scale_fn
module Failure_spec = Ckpt_failures.Failure_spec

let table2_scales = [| 128.; 256.; 384.; 512.; 1024. |]

let table2_costs =
  [| [| 0.9; 0.67; 0.67; 0.99; 1.1 |];
     [| 2.53; 2.54; 2.25; 3.05; 2.56 |];
     [| 3.7; 4.1; 3.9; 4.12; 3.61 |];
     [| 7.; 8.1; 14.3; 21.3; 25.15 |] |]

let table2_fitted = [| (0.866, 0.); (2.586, 0.); (3.886, 0.); (5.5, 0.0212) |]

let kappa = 0.46
let alloc = 60.

let eval_speedup () = Speedup.quadratic ~kappa ~n_star:1e6

let eval_problem ?(levels = Level.fti_fusion) ~te_core_days ~case () =
  { Optimizer.te = te_core_days *. 86400.;
    speedup = eval_speedup ();
    levels;
    alloc;
    spec = Failure_spec.of_string ~baseline_scale:1e6 case }

let cases = [ "16-12-8-4"; "8-6-4-2"; "4-3-2-1"; "16-8-4-2"; "8-4-2-1"; "4-2-1-0.5" ]
let table4_cases = [ "16-12-8-4"; "8-6-4-2"; "4-3-2-1" ]

let fig3_problem ~linear_cost =
  let level =
    if linear_cost then Level.v (Overhead.linear ~eps:5. ~alpha:0.005)
    else Level.v (Overhead.constant 5.)
  in
  { Single_level.te = 4000. *. 86400.;
    speedup = Speedup.quadratic ~kappa ~n_star:1e5;
    level;
    (* The paper's optima satisfy eta0 + A = 5 exactly, so A = 0 here. *)
    alloc = 0.;
    mu = Scale_fn.linear ~slope:0.005 () }

let fig3_expected ~linear_cost = if linear_cost then (140., 20_215.) else (797., 81_746.)

let table3_ml_scales = [| 472e3; 564e3; 658e3; 563e3; 657e3; 734e3 |]
let table3_sl_scales = [| 41e3; 78.6e3; 36.7e3; 53.6e3; 325e3; 399e3 |]

let table4_wct_days =
  [ ("ML(opt-scale)", [| 14.6; 12.8; 11.1 |]);
    ("SL(opt-scale)", [| 37.3; 23.2; 17.2 |]);
    ("ML(ori-scale)", [| 15.4; 13.4; 11.7 |]);
    ("SL(ori-scale)", [| 890.; 892.; 890. |]) ]

let table4_efficiency =
  [ ("ML(opt-scale)", [| 0.158; 0.173; 0.193 |]);
    ("SL(opt-scale)", [| 0.092; 0.123; 0.146 |]);
    ("ML(ori-scale)", [| 0.13; 0.15; 0.171 |]);
    ("SL(ori-scale)", [| 0.002; 0.002; 0.002 |]) ]

let solution_names = [ "ML(opt-scale)"; "SL(opt-scale)"; "ML(ori-scale)"; "SL(ori-scale)" ]
