(** Sensitivity of the optimized plan to its estimated inputs.

    Elasticities of the predicted wall-clock and the optimal scale with
    respect to every model parameter, for the paper's flagship evaluation
    case — quantifying which estimates (speedup slope, ideal scale,
    failure rates, level costs) matter most. *)

val compute : ?case:string -> unit -> Ckpt_model.Sensitivity.row list
val run : Format.formatter -> unit
