module S = Ckpt_mpi.Speedup_study

type study = {
  application : string;
  points : S.point list;
  fit : S.fit;
  kappa_quick_estimate : float;
}

let machine = Ckpt_mpi.Machine.default

let study application program scales quick_at =
  let points = S.measure ~machine ~program ~scales in
  let fit = S.fit_quadratic (S.ascending_range points) in
  let quick_point =
    List.fold_left
      (fun acc p -> if p.S.ranks <= quick_at && p.S.ranks > acc.S.ranks then p else acc)
      (List.hd points) points
  in
  { application; points; fit; kappa_quick_estimate = S.estimate_kappa quick_point }

let heat ?(scales = [ 2; 4; 8; 16; 32; 64; 128; 160; 256; 512; 1024 ]) () =
  study "Heat Distribution"
    (fun ~ranks -> Ckpt_mpi.Heat.program ~ranks ())
    scales 160

let nek ?(scales = [ 2; 4; 8; 16; 25; 36; 50; 64; 100; 128; 200; 256; 400 ]) () =
  study "Nek5000 eddy_uv"
    (fun ~ranks -> Ckpt_mpi.Nek_eddy.program ~ranks ())
    scales 100

let print_study ppf s ~paper_kappa =
  Format.fprintf ppf "%s:@\n" s.application;
  Render.table ppf
    ~headers:[ "ranks"; "job time (s)"; "speedup" ]
    ~rows:
      (List.map
         (fun p ->
           [ string_of_int p.S.ranks; Printf.sprintf "%.4f" p.S.job_time;
             Printf.sprintf "%.2f" p.S.speedup ])
         s.points);
  Format.fprintf ppf
    "quadratic fit: kappa=%.3f n_star=%.0f r2=%.4f over %d ascending points@\n"
    s.fit.S.kappa s.fit.S.n_star s.fit.S.r_squared s.fit.S.points_used;
  Format.fprintf ppf "quick kappa estimate: %.3f   (paper: %s)@\n@\n"
    s.kappa_quick_estimate paper_kappa

let run ppf =
  Render.section ppf "Figure 2: application speedups and quadratic fits";
  print_study ppf (heat ()) ~paper_kappa:"0.48 quick estimate, 0.46 least squares";
  print_study ppf (nek ()) ~paper_kappa:"fit over the ascending 1-100 range"
