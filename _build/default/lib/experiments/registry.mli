(** Registry of all experiments, for the CLI runner and the bench
    harness. *)

type experiment = {
  id : string;  (** e.g. "fig3", "table4" *)
  title : string;
  run : Format.formatter -> unit;
}

val all : experiment list
(** Every experiment, in paper order (figures and tables first, then the
    analyses and ablations). *)

val find : string -> experiment option
(** Lookup by id (case-insensitive). *)

val ids : unit -> string list
