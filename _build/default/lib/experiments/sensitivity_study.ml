module Sensitivity = Ckpt_model.Sensitivity

let compute ?(case = "16-12-8-4") () =
  let problem = Paper_data.eval_problem ~te_core_days:3e6 ~case () in
  let knobs =
    Sensitivity.quadratic_knobs ~kappa:Paper_data.kappa ~n_star:1e6 problem
  in
  Sensitivity.elasticities knobs

let run ppf =
  Render.section ppf "Sensitivity: elasticities of E(Tw) and N* (16-12-8-4)";
  Render.table ppf
    ~headers:[ "parameter"; "dlnE(Tw)/dln p"; "dlnN*/dln p" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.Sensitivity.name;
             Printf.sprintf "%+.3f" r.Sensitivity.wall_clock_elasticity;
             Printf.sprintf "%+.3f" r.Sensitivity.scale_elasticity ])
         (compute ()));
  Format.fprintf ppf
    "@\nReading: an elasticity of -1 on kappa means a 1%% speedup-slope error@\n\
     moves the predicted wall-clock by 1%% the other way; rates and the PFS@\n\
     cost dominate the scale choice.@\n"
