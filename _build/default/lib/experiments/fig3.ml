module SL = Ckpt_model.Single_level

type result = {
  linear_cost : bool;
  x_star : float;
  n_star : float;
  wall_clock : float;
  iterations : int;
  x_sweep : (float * float) list;
  n_sweep : (float * float) list;
  paper_x : float;
  paper_n : float;
}

let geometric lo hi points =
  assert (points >= 2 && lo > 0. && hi > lo);
  let llo = log lo and lhi = log hi in
  List.init points (fun i ->
      exp (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (points - 1))))

let compute ~linear_cost =
  let p = Paper_data.fig3_problem ~linear_cost in
  let sol = SL.optimize p in
  let paper_x, paper_n = Paper_data.fig3_expected ~linear_cost in
  let x_star = sol.SL.x and n_star = sol.SL.n in
  let x_sweep =
    List.map
      (fun x -> (x, SL.expected_wall_clock p ~x ~n:n_star))
      (geometric (x_star /. 8.) (x_star *. 8.) 17)
  in
  let n_sweep =
    List.map
      (fun n -> (n, SL.expected_wall_clock p ~x:x_star ~n))
      (geometric (n_star /. 8.) (Float.min (n_star *. 8.) 1e5) 17)
  in
  { linear_cost; x_star; n_star; wall_clock = sol.SL.wall_clock;
    iterations = sol.SL.iterations; x_sweep; n_sweep; paper_x; paper_n }

let sweep_is_minimal r =
  List.for_all (fun (_, e) -> e >= r.wall_clock -. 1e-6) r.x_sweep
  && List.for_all (fun (_, e) -> e >= r.wall_clock -. 1e-6) r.n_sweep

let print_result ppf r =
  Format.fprintf ppf "%s checkpoint cost:@\n"
    (if r.linear_cost then "linear-increasing" else "constant");
  Format.fprintf ppf
    "  optimum: x*=%.1f (paper %.0f), N*=%.0f (paper %.0f), E(Tw)=%s days, %d iterations@\n"
    r.x_star r.paper_x r.n_star r.paper_n (Render.days r.wall_clock) r.iterations;
  Render.table ppf
    ~headers:[ "x (at N*)"; "E(Tw) days"; "N (at x*)"; "E(Tw) days" ]
    ~rows:
      (List.map2
         (fun (x, ex) (n, en) ->
           [ Printf.sprintf "%.0f" x; Render.days ex; Printf.sprintf "%.0f" n;
             Render.days en ])
         r.x_sweep r.n_sweep);
  Format.fprintf ppf "  sweep confirms minimum: %b@\n@\n" (sweep_is_minimal r)

let run ppf =
  Render.section ppf "Figure 3: single-level optimum (numerical confirmation)";
  print_result ppf (compute ~linear_cost:false);
  print_result ppf (compute ~linear_cost:true)
