(** Convergence study of Algorithm 1.

    The paper reports: the single-level fixed point converges in 30–40
    steps from x0 = 100,000 (Section III-C), and the outer mu-loop takes
    7–15 iterations at threshold 1e-12 for the Table IV cases
    (Section IV-B).  This experiment measures both on our implementation,
    counting both outer sweeps and total inner iterations. *)

type row = {
  label : string;
  outer : int;
  inner : int;
  converged : bool;
  wall_clock_days : float;
}

val single_level_iterations : unit -> int * int
(** [(iterations_constant, iterations_linear)] for the two Fig. 3
    configurations, from x0 = 100,000. *)

val outer_loop_rows : ?delta:float -> unit -> row list
(** Algorithm 1 iteration counts across the six evaluation cases and the
    three Table IV cases (delta default 1e-12). *)

val run : Format.formatter -> unit
