(** Fig. 7 — efficiency (processor utilization) of the four solutions for
    both workloads (Te = 3m and 10m core-days).

    Efficiency is the wall-clock-based speedup divided by the core count:
    [(te / wall_clock) / N].  The paper's finding: SL(opt-scale) is the
    most "efficient" (it uses very few cores) but unacceptably slow;
    ML(opt-scale) combines near-best efficiency with the shortest
    wall-clock. *)

type row = {
  case : string;
  solution : string;
  te_core_days : float;
  efficiency : float;
}

val compute : ?runs:int -> ?cases:string list -> unit -> row list
(** Defaults: 30 runs, the six paper cases, both workloads. *)

val run : Format.formatter -> unit
