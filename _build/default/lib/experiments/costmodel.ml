module Cost_model = Ckpt_fti.Cost_model
module Optimizer = Ckpt_model.Optimizer

type comparison = {
  level : int;
  scale : int;
  predicted : float;
  measured : float;
  error : float;
}

let scales = [| 128; 256; 384; 512; 1024 |]

let compare_costs () =
  let predicted = Cost_model.predict_table Cost_model.fusion ~scales in
  List.concat
    (List.init 4 (fun idx ->
         List.init (Array.length scales) (fun j ->
             let p = predicted.(idx).(j) and m = Paper_data.table2_costs.(idx).(j) in
             { level = idx + 1; scale = scales.(j); predicted = p; measured = m;
               error = Float.abs (p -. m) /. m })))

let max_error comparisons =
  List.fold_left (fun acc c -> Float.max acc c.error) 0. comparisons

let plans () =
  let derived = Cost_model.fit_levels Cost_model.fusion ~scales in
  let case = "16-12-8-4" in
  let from_pred =
    Optimizer.ml_opt_scale (Paper_data.eval_problem ~levels:derived ~te_core_days:3e6 ~case ())
  in
  let from_meas =
    Optimizer.ml_opt_scale (Paper_data.eval_problem ~te_core_days:3e6 ~case ())
  in
  (from_pred, from_meas)

let run ppf =
  Render.section ppf "Cost model: Table II derived from the storage substrate";
  let comparisons = compare_costs () in
  Render.table ppf
    ~headers:[ "level"; "cores"; "predicted (s)"; "measured (s)"; "error" ]
    ~rows:
      (List.map
         (fun c ->
           [ string_of_int c.level; string_of_int c.scale;
             Printf.sprintf "%.2f" c.predicted; Printf.sprintf "%.2f" c.measured;
             Render.pct c.error ])
         comparisons);
  Format.fprintf ppf
    "@\nmax error %s (the paper injects up to 30%% jitter on these costs)@\n"
    (Render.pct (max_error comparisons));
  let from_pred, from_meas = plans () in
  Format.fprintf ppf
    "@\nML(opt-scale) on the DERIVED hierarchy:  N* = %.0f, E(Tw) = %s days@\n"
    from_pred.Optimizer.n
    (Render.days from_pred.Optimizer.wall_clock);
  Format.fprintf ppf
    "ML(opt-scale) on the MEASURED hierarchy: N* = %.0f, E(Tw) = %s days@\n"
    from_meas.Optimizer.n
    (Render.days from_meas.Optimizer.wall_clock)
