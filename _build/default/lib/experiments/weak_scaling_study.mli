(** Weak-scaling study (the paper's "our model is suitable for both
    cases" claim, Section II, made quantitative).

    For a fixed per-core workload, sweep the scale from 10⁴ to 10⁶ cores
    and report the weak-scaling efficiency under (a) no failures, (b) the
    single-level PFS model and (c) the multilevel model — showing how
    multilevel checkpointing preserves weak-scaling efficiency as the
    machine (and with it the failure rate) grows. *)

type row = {
  n : float;
  ideal : float;  (** failure-free weak efficiency *)
  single_level : float;
  multilevel : float;
}

val compute : ?case:string -> ?per_core_hours:float -> unit -> row list
val run : Format.formatter -> unit
