(** Plain-text rendering of experiment outputs: aligned ASCII tables for
    the paper's tables and CSV series for its figures (one series per
    column, ready for any plotting tool). *)

val table : Format.formatter -> headers:string list -> rows:string list list -> unit
(** Render an aligned table with a header rule.  Rows may be ragged; short
    rows are padded with empty cells. *)

val csv : Format.formatter -> headers:string list -> rows:string list list -> unit
(** RFC-4180-ish CSV (fields containing commas or quotes are quoted). *)

val section : Format.formatter -> string -> unit
(** A titled separator line. *)

val float_cell : ?decimals:int -> float -> string
(** Compact numeric cell: fixed decimals (default 2), or scientific
    notation for very large/small magnitudes. *)

val days : float -> string
(** Seconds rendered as days with 2 decimals. *)

val pct : float -> string
(** Ratio rendered as a percentage with 1 decimal. *)
