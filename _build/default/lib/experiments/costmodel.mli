(** Closing the loop: predict Table II from the storage substrate.

    The paper measures the FTI level overheads; we additionally {e derive}
    them from the mechanism models ({!Ckpt_fti.Cost_model}: local-device
    bandwidth, partner-copy links, distributed Reed–Solomon encoding, the
    PFS metadata wall), fit the paper's overhead laws to the predictions,
    and run Algorithm 1 on the fitted hierarchy — an end-to-end
    characterize-then-optimize pipeline with no measured inputs.  The
    experiment reports predicted-vs-measured costs and the plan produced
    from each. *)

type comparison = {
  level : int;
  scale : int;
  predicted : float;
  measured : float;  (** Table II *)
  error : float;  (** relative *)
}

val compare_costs : unit -> comparison list
val max_error : comparison list -> float

val plans : unit -> Ckpt_model.Optimizer.plan * Ckpt_model.Optimizer.plan
(** [(from_predictions, from_measurements)]: ML(opt-scale) plans built on
    the derived hierarchy vs the Table II hierarchy, for the 16-12-8-4
    evaluation case. *)

val run : Format.formatter -> unit
