module Optimizer = Ckpt_model.Optimizer
module Level = Ckpt_model.Level
module Single_level = Ckpt_model.Single_level
module Scale_fn = Ckpt_model.Scale_fn
module Young = Ckpt_model.Young
module Overhead = Ckpt_model.Overhead
module Daly = Ckpt_model.Daly
module Speedup = Ckpt_model.Speedup
module Failure_spec = Ckpt_failures.Failure_spec
module Run_config = Ckpt_sim.Run_config
module Replication = Ckpt_sim.Replication
module Stats = Ckpt_numerics.Stats

(* --- simulator semantics ------------------------------------------------ *)

type semantics_row = { label : string; wall_clock_days : float option }

let semantics_study ?(runs = 30) ?(case = "16-12-8-4") () =
  let problem = Paper_data.eval_problem ~te_core_days:3e6 ~case () in
  let plan = Optimizer.ml_opt_scale problem in
  let variants =
    [ ("abort ckpt / restart recovery",
       { Run_config.default_semantics with Run_config.on_ckpt_failure = Run_config.Abort_ckpt });
      ("atomic ckpt / restart recovery",
       { Run_config.default_semantics with Run_config.on_ckpt_failure = Run_config.Atomic_ckpt });
      ("abort ckpt / ignore failures in recovery",
       { Run_config.default_semantics with
         Run_config.on_recovery_failure = Run_config.Ignore_during_recovery }) ]
  in
  List.map
    (fun (label, semantics) ->
      let a = Solutions.simulate_plan ~runs ~semantics problem plan in
      { label;
        wall_clock_days =
          (if a.Replication.completed_runs = 0 then None
           else Some (a.Replication.wall_clock.Stats.mean /. 86400.)) })
    variants

(* --- jitter ------------------------------------------------------------- *)

type jitter_row = { ratio : float; wall_clock_days : float }

let jitter_study ?(runs = 30) ?(case = "8-6-4-2") () =
  let problem = Paper_data.eval_problem ~te_core_days:3e6 ~case () in
  let plan = Optimizer.ml_opt_scale problem in
  List.map
    (fun ratio ->
      let semantics = { Run_config.default_semantics with Run_config.jitter_ratio = ratio } in
      let a = Solutions.simulate_plan ~runs ~semantics problem plan in
      { ratio; wall_clock_days = a.Replication.wall_clock.Stats.mean /. 86400. })
    [ 0.; 0.15; 0.3; 0.5 ]

(* --- interval policies --------------------------------------------------- *)

type policy_row = {
  policy : string;
  intervals : float;
  predicted_days : float;
  simulated_days : float;
}

let interval_policy_study ?(runs = 30) () =
  (* Single-level model at a fixed scale: the setting where Young and Daly
     apply directly. *)
  let n = 100_000. in
  let speedup = Speedup.quadratic ~kappa:Paper_data.kappa ~n_star:1e6 in
  let te = 1e6 *. 86400. in
  let level = Level.v ~name:"pfs" (Overhead.constant 300.) in
  let spec = Failure_spec.v ~baseline_scale:1e6 [| 20. |] in
  let lambda = Failure_spec.rate_per_second spec ~level:1 ~scale:n in
  let productive = Speedup.productive_time speedup ~te ~n in
  let mu_young = lambda *. productive in
  let ckpt_cost = Overhead.cost level.Level.ckpt n in
  let params =
    { Single_level.te; speedup; level; alloc = Paper_data.alloc;
      mu = Scale_fn.linear ~slope:(lambda *. productive /. n) () }
  in
  (* The paper's optimizer at this fixed scale: iterate the interval update
     with the wall-clock-consistent failure count (the outer loop of
     Algorithm 1 restricted to one level and one scale). *)
  let optimal_x =
    let rec loop x estimate iter =
      let mu = lambda *. estimate in
      let x' = Float.max 1. (sqrt (mu *. te /. (2. *. ckpt_cost *. Speedup.eval speedup n))) in
      let p' = { params with Single_level.mu = Scale_fn.const mu } in
      let estimate' = Single_level.expected_wall_clock p' ~x:x' ~n in
      if iter > 100 || (Float.abs (x' -. x) < 1e-9 && Float.abs (estimate' -. estimate) < 1e-6)
      then x'
      else loop x' estimate' (iter + 1)
    in
    loop 1. productive 0
  in
  let candidates =
    [ ("Young", Young.interval_count ~productive ~ckpt_cost ~failures:mu_young);
      ("Daly", Daly.interval_count ~productive ~ckpt_cost ~failures:mu_young);
      ("optimized (this paper)", optimal_x) ]
  in
  List.map
    (fun (policy, x) ->
      let predicted = Single_level.expected_wall_clock params ~x ~n in
      let config =
        Run_config.v ~te ~speedup ~levels:[| level |] ~alloc:Paper_data.alloc ~spec
          ~xs:[| x |] ~n ()
      in
      let a = Replication.run ~runs config in
      { policy; intervals = x;
        predicted_days = predicted /. 86400.;
        simulated_days = a.Replication.wall_clock.Stats.mean /. 86400. })
    candidates

(* --- failure inter-arrival laws ------------------------------------------ *)

type law_row = { law : string; wall_clock_days : float; mean_failures : float }

let failure_law_study ?(runs = 30) ?(case = "16-12-8-4") () =
  let problem = Paper_data.eval_problem ~te_core_days:3e6 ~case () in
  let plan = Optimizer.ml_opt_scale problem in
  let weibull shape = Ckpt_failures.Arrivals.Weibull { shape } in
  let variants =
    [ ("exponential (model assumption)", None);
      ("weibull shape 0.7 (bursty)", Some (Array.make 4 (weibull 0.7)));
      ("weibull shape 1.5 (wear-out)", Some (Array.make 4 (weibull 1.5))) ]
  in
  List.map
    (fun (law, laws) ->
      let config =
        Run_config.of_plan ~semantics:Run_config.paper_semantics ?failure_laws:laws
          ~max_wall_clock:Solutions.default_horizon ~problem ~plan ()
      in
      let a = Replication.run ~runs config in
      { law;
        wall_clock_days = a.Replication.wall_clock.Stats.mean /. 86400.;
        mean_failures = a.Replication.mean_failures })
    variants

(* --- mark alignment -------------------------------------------------------- *)

type alignment_row = {
  label : string;
  wall_clock_days : float;
  ckpts_written : float;
}

let alignment_study ?(runs = 30) ?(case = "16-12-8-4") () =
  let problem = Paper_data.eval_problem ~te_core_days:3e6 ~case () in
  let plan = Optimizer.ml_opt_scale problem in
  let nested = Run_config.nested_xs plan.Optimizer.xs in
  let subsume = { Run_config.paper_semantics with Run_config.subsume_coincident = true } in
  let variants =
    [ ("independent marks (optimizer output)", plan.Optimizer.xs, Run_config.paper_semantics);
      ("nested counts", nested, Run_config.paper_semantics);
      ("nested counts + subsumption", nested, subsume) ]
  in
  List.map
    (fun (label, xs, semantics) ->
      let config =
        Run_config.v ~semantics ~max_wall_clock:Solutions.default_horizon
          ~te:problem.Optimizer.te ~speedup:problem.Optimizer.speedup
          ~levels:problem.Optimizer.levels ~alloc:problem.Optimizer.alloc
          ~spec:problem.Optimizer.spec ~xs ~n:plan.Optimizer.n ()
      in
      let outcomes = Replication.outcomes ~runs config in
      let mean f = Stats.mean (Array.map f outcomes) in
      { label;
        wall_clock_days = mean (fun o -> o.Ckpt_sim.Outcome.wall_clock) /. 86400.;
        ckpts_written =
          mean (fun o ->
              float_of_int (Array.fold_left ( + ) 0 o.Ckpt_sim.Outcome.ckpts_written)) })
    variants

(* --- level subsets ------------------------------------------------------- *)

type subset_row = { levels_used : int list; wall_clock_days : float; scale : float }

let level_subset_study ?(case = "16-12-8-4") () =
  let base = Paper_data.eval_problem ~te_core_days:3e6 ~case () in
  List.map
    (fun (c : Ckpt_model.Level_selection.candidate) ->
      { levels_used = c.Ckpt_model.Level_selection.levels_used;
        wall_clock_days =
          c.Ckpt_model.Level_selection.plan.Optimizer.wall_clock /. 86400.;
        scale = c.Ckpt_model.Level_selection.plan.Optimizer.n })
    (Ckpt_model.Level_selection.evaluate base)

(* --- driver --------------------------------------------------------------- *)

let run ppf =
  Render.section ppf "Ablation: simulator semantics (ML(opt-scale), 16-12-8-4)";
  Render.table ppf ~headers:[ "semantics"; "wall (days)" ]
    ~rows:
      (List.map
         (fun (r : semantics_row) ->
           [ r.label;
             (match r.wall_clock_days with
              | None -> "> horizon"
              | Some d -> Printf.sprintf "%.2f" d) ])
         (semantics_study ()));
  Render.section ppf "Ablation: checkpoint-cost jitter";
  Render.table ppf ~headers:[ "jitter"; "wall (days)" ]
    ~rows:
      (List.map
         (fun (r : jitter_row) ->
           [ Render.pct r.ratio; Printf.sprintf "%.2f" r.wall_clock_days ])
         (jitter_study ()));
  Render.section ppf "Ablation: interval policies (single level, fixed N = 100k)";
  Render.table ppf
    ~headers:[ "policy"; "intervals"; "predicted (days)"; "simulated (days)" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.policy; Printf.sprintf "%.1f" r.intervals;
             Printf.sprintf "%.2f" r.predicted_days;
             Printf.sprintf "%.2f" r.simulated_days ])
         (interval_policy_study ()));
  Render.section ppf "Ablation: checkpoint mark alignment (ML(opt-scale), 16-12-8-4)";
  Render.table ppf ~headers:[ "policy"; "wall (days)"; "ckpts written" ]
    ~rows:
      (List.map
         (fun (r : alignment_row) ->
           [ r.label; Printf.sprintf "%.2f" r.wall_clock_days;
             Printf.sprintf "%.0f" r.ckpts_written ])
         (alignment_study ()));
  Render.section ppf "Ablation: failure inter-arrival law (same mean rates)";
  Render.table ppf ~headers:[ "law"; "wall (days)"; "failures" ]
    ~rows:
      (List.map
         (fun (r : law_row) ->
           [ r.law; Printf.sprintf "%.2f" r.wall_clock_days;
             Printf.sprintf "%.1f" r.mean_failures ])
         (failure_law_study ()));
  Render.section ppf
    "Ablation: checkpoint level subsets, best first (model optimum, 16-12-8-4)";
  Render.table ppf ~headers:[ "levels"; "E(Tw) days"; "N*" ]
    ~rows:
      (List.map
         (fun r ->
           [ String.concat "+" (List.map string_of_int r.levels_used);
             Printf.sprintf "%.2f" r.wall_clock_days; Printf.sprintf "%.0f" r.scale ])
         (level_subset_study ()))
