module SL = Ckpt_model.Single_level
module Optimizer = Ckpt_model.Optimizer
module Level = Ckpt_model.Level

type row = {
  label : string;
  outer : int;
  inner : int;
  converged : bool;
  wall_clock_days : float;
}

let single_level_iterations () =
  let solve linear_cost =
    (SL.optimize (Paper_data.fig3_problem ~linear_cost)).SL.iterations
  in
  (solve false, solve true)

let outer_loop_rows ?(delta = 1e-12) () =
  let row label problem =
    let plan = Optimizer.solve ~delta problem in
    { label;
      outer = plan.Optimizer.outer_iterations;
      inner = plan.Optimizer.inner_iterations;
      converged = plan.Optimizer.converged;
      wall_clock_days = plan.Optimizer.wall_clock /. 86400. }
  in
  List.map
    (fun case ->
      row ("fusion " ^ case) (Paper_data.eval_problem ~te_core_days:3e6 ~case ()))
    Paper_data.cases
  @ List.map
      (fun case ->
        row ("const-pfs " ^ case)
          (Paper_data.eval_problem ~levels:Level.constant_pfs_case ~te_core_days:2e6
             ~case ()))
      Paper_data.table4_cases

let run ppf =
  Render.section ppf "Convergence of Algorithm 1";
  let const_iters, linear_iters = single_level_iterations () in
  Format.fprintf ppf
    "single-level fixed point from x0=100000: %d / %d alternation steps@\n\
     (each step embeds an integer bisection on N; the paper counts 30-40 raw steps)@\n@\n"
    const_iters linear_iters;
  Render.table ppf
    ~headers:[ "configuration"; "outer iters"; "inner iters"; "converged"; "E(Tw) days" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.label; string_of_int r.outer; string_of_int r.inner;
             string_of_bool r.converged; Printf.sprintf "%.2f" r.wall_clock_days ])
         (outer_loop_rows ()));
  Format.fprintf ppf "@\npaper: 7-15 outer iterations at threshold 1e-12@\n"
