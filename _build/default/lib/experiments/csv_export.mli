(** CSV artifacts for the paper's figures.

    Writes one CSV file per figure-series into a directory, so the plots
    can be regenerated with any external tool.  Covered: Fig. 1 (tradeoff
    curves), Fig. 2 (speedup measurements), Fig. 3 (optimum sweeps),
    Table II vs the derived cost model, Table III scales, the sensitivity
    elasticities, and — optionally, they simulate — the Fig. 5/6 time
    portions. *)

val write_analytic : dir:string -> string list
(** Write the cheap (model/emulator-only) artifacts; returns the paths
    written.  The directory must exist. *)

val write_simulated : ?runs:int -> dir:string -> unit -> string list
(** Write the simulation-backed artifacts (Fig. 5 and Fig. 6 portions;
    default 20 runs per cell). *)
