module Optimizer = Ckpt_model.Optimizer
module Weak_scaling = Ckpt_model.Weak_scaling
module Level = Ckpt_model.Level
module Failure_spec = Ckpt_failures.Failure_spec

type row = {
  n : float;
  ideal : float;
  single_level : float;
  multilevel : float;
}

let compute ?(case = "8-6-4-2") ?(per_core_hours = 24.) () =
  let per_core_work = per_core_hours *. 3600. in
  let speedup = Paper_data.eval_speedup () in
  let spec = Failure_spec.of_string ~baseline_scale:1e6 case in
  let scales = [ 1e4; 3e4; 1e5; 3e5; 6e5; 9e5 ] in
  let ml =
    Weak_scaling.series ~per_core_work ~speedup ~levels:Level.fti_fusion
      ~alloc:Paper_data.alloc ~spec ~scales
  in
  let sl_levels = [| Level.fti_fusion.(3) |] in
  let total = Array.fold_left ( +. ) 0. spec.Failure_spec.rates_per_day in
  let sl_spec = Failure_spec.v ~baseline_scale:1e6 [| total |] in
  let sl =
    Weak_scaling.series ~per_core_work ~speedup ~levels:sl_levels
      ~alloc:Paper_data.alloc ~spec:sl_spec ~scales
  in
  List.map2
    (fun (m : Weak_scaling.point) (s : Weak_scaling.point) ->
      { n = m.Weak_scaling.n;
        ideal = per_core_work /. m.Weak_scaling.failure_free;
        single_level = s.Weak_scaling.efficiency;
        multilevel = m.Weak_scaling.efficiency })
    ml sl

let run ppf =
  Render.section ppf
    "Weak scaling: efficiency vs scale (24 core-hours per core, case 8-6-4-2)";
  Render.table ppf
    ~headers:[ "cores"; "ideal eff"; "single-level eff"; "multilevel eff" ]
    ~rows:
      (List.map
         (fun r ->
           [ Printf.sprintf "%.0fk" (r.n /. 1e3); Printf.sprintf "%.3f" r.ideal;
             Printf.sprintf "%.3f" r.single_level; Printf.sprintf "%.3f" r.multilevel ])
         (compute ()));
  Format.fprintf ppf
    "@\nFailure rates grow with the machine; the multilevel model holds on to@\n\
     much more of the ideal weak-scaling efficiency than the PFS-only model.@\n"
