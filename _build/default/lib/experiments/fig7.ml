module Replication = Ckpt_sim.Replication

type row = {
  case : string;
  solution : string;
  te_core_days : float;
  efficiency : float;
}

let compute ?(runs = 30) ?(cases = Paper_data.cases) () =
  List.concat_map
    (fun te_core_days ->
      let t = Time_analysis.compute ~runs ~cases ~te_core_days () in
      List.map
        (fun (c : Time_analysis.cell) ->
          { case = c.Time_analysis.case;
            solution = c.Time_analysis.solution;
            te_core_days;
            efficiency = c.Time_analysis.aggregate.Replication.mean_efficiency })
        t.Time_analysis.cells)
    [ 3e6; 1e7 ]

let run ppf =
  Render.section ppf "Figure 7: efficiency of the four solutions";
  let rows = compute () in
  Render.table ppf
    ~headers:[ "Te (core-days)"; "case"; "solution"; "efficiency" ]
    ~rows:
      (List.map
         (fun r ->
           [ Printf.sprintf "%.0e" r.te_core_days; r.case; r.solution;
             Printf.sprintf "%.4f" r.efficiency ])
         rows);
  Format.fprintf ppf
    "@\npaper: SL(opt-scale) peaks efficiency by under-using cores; ML(opt-scale)@\n\
     keeps near-top efficiency at the shortest wall-clock.@\n"
