(** Fig. 4 — simulator validation at cluster scale.

    The paper validates its exascale simulator against real 1,024-core
    FTI runs with varying checkpoint intervals per level, reporting < 4 %
    difference.  Our substitute for the physical cluster is the
    tick-driven engine (1-second ticks, the paper's own discretization),
    an implementation independent of the fast event-driven engine; the
    experiment sweeps each level's interval count and compares the two
    engines' mean wall-clock times. *)

type point = {
  level : int;  (** level whose interval count is being varied *)
  factor : float;  (** multiplier applied to that level's base count *)
  event_wall : float;  (** event-engine mean wall clock, seconds *)
  tick_wall : float;  (** tick-engine mean wall clock, seconds *)
  diff : float;  (** relative difference *)
}

val compute : ?runs:int -> unit -> point list
(** Default 30 runs per engine per point; a 1,024-core Heat-like workload
    with the Fusion overheads and several failures per run. *)

val max_diff : point list -> float

val run : Format.formatter -> unit
