(** Ablation studies for the design choices DESIGN.md calls out.

    Four studies, each answering one "what if":

    - {b semantics} — how much the under-specified simulator semantics
      matter: aborting vs atomic checkpoint writes, restarting vs ignoring
      failures during recovery (Run_config toggles);
    - {b jitter} — sensitivity of the simulated wall-clock to the +-30 %
      overhead jitter the paper injects;
    - {b interval policies} — Young's formula vs Daly's refinement vs the
      paper's optimizer on the single-level model at a fixed scale;
    - {b failure law} — robustness of the exponential-derived plan when
      failures actually follow Weibull inter-arrival laws of equal mean
      rate;
    - {b mark alignment} — independent vs FTI-style nested checkpoint
      cadences, with and without coincident-mark subsumption;
    - {b level subsets} — the value of each checkpoint level: Algorithm 1
      run on every admissible subset of the hierarchy (via
      {!Ckpt_model.Level_selection}), failures escalating to the cheapest
      retained level above them. *)

type semantics_row = {
  label : string;
  wall_clock_days : float option;  (** [None] when no run completed *)
}

val semantics_study : ?runs:int -> ?case:string -> unit -> semantics_row list

type jitter_row = { ratio : float; wall_clock_days : float }

val jitter_study : ?runs:int -> ?case:string -> unit -> jitter_row list

type policy_row = {
  policy : string;
  intervals : float;
  predicted_days : float;
  simulated_days : float;
}

val interval_policy_study : ?runs:int -> unit -> policy_row list

type law_row = { law : string; wall_clock_days : float; mean_failures : float }

val failure_law_study : ?runs:int -> ?case:string -> unit -> law_row list
(** Sensitivity to the inter-arrival law: the ML(opt-scale) plan (derived
    under the exponential assumption) simulated under exponential and
    Weibull failures of equal mean rate — [shape 0.7] (bursty,
    infant-mortality-like) and [shape 1.5] (wear-out). *)

type alignment_row = {
  label : string;
  wall_clock_days : float;
  ckpts_written : float;  (** mean first-time checkpoint writes per run *)
}

val alignment_study : ?runs:int -> ?case:string -> unit -> alignment_row list
(** Mark scheduling policies: the optimizer's independent per-level marks,
    FTI-style nested counts, and nested counts with coincident-mark
    subsumption (only the highest due level is written). *)

type subset_row = {
  levels_used : int list;
  wall_clock_days : float;
  scale : float;
}

val level_subset_study : ?case:string -> unit -> subset_row list
(** Model-predicted optimum per level subset (each subset's failure rates
    are regrouped onto the cheapest sufficient level). *)

val run : Format.formatter -> unit
