module Optimizer = Ckpt_model.Optimizer
module Speedup = Ckpt_model.Speedup

type point = { n : float; failure_free : float; with_checkpoints : float }

let series ?(te_core_days = 3e6) ?(case = "16-12-8-4") ?(points = 25) () =
  assert (points >= 2);
  let problem = Paper_data.eval_problem ~te_core_days ~case () in
  let n_max = Speedup.search_upper_bound problem.Optimizer.speedup ~default:1e9 in
  let lo = log 1e3 and hi = log n_max in
  List.init points (fun i ->
      let n = exp (lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1))) in
      let plan = Optimizer.solve ~fixed_n:n problem in
      { n;
        failure_free = Speedup.productive_time problem.Optimizer.speedup
            ~te:problem.Optimizer.te ~n;
        with_checkpoints = plan.Optimizer.wall_clock })

let optimal_scales points =
  let best f =
    (List.fold_left (fun acc p -> if f p < f acc then p else acc) (List.hd points) points).n
  in
  (best (fun p -> p.with_checkpoints), best (fun p -> p.failure_free))

let run ppf =
  Render.section ppf "Figure 1: speedup vs checkpoint-overhead tradeoff";
  let pts = series () in
  Render.table ppf
    ~headers:[ "cores"; "failure-free (days)"; "with checkpoints (days)" ]
    ~rows:
      (List.map
         (fun p ->
           [ Printf.sprintf "%.0f" p.n; Render.days p.failure_free;
             Render.days p.with_checkpoints ])
         pts);
  let opt_ckpt, opt_free = optimal_scales pts in
  Format.fprintf ppf
    "@\noptimal scale with checkpoints ~ %.0f cores; failure-free optimum at %.0f cores@\n"
    opt_ckpt opt_free
