module Optimizer = Ckpt_model.Optimizer
module Replication = Ckpt_sim.Replication
module Stats = Ckpt_numerics.Stats

type cell = {
  solution : string;
  case : string;
  plan : Optimizer.plan;
  aggregate : Replication.aggregate;
}

type t = { te_core_days : float; cells : cell list }

let compute ?runs ?(cases = Paper_data.cases) ~te_core_days () =
  let cells =
    List.concat_map
      (fun case ->
        let problem = Paper_data.eval_problem ~te_core_days ~case () in
        List.map
          (fun s ->
            { solution = s.Solutions.name; case; plan = s.Solutions.plan;
              aggregate = s.Solutions.aggregate })
          (Solutions.solve_and_simulate ?runs problem))
      cases
  in
  { te_core_days; cells }

let wall_or_horizon cell =
  if cell.aggregate.Replication.completed_runs = 0 then Solutions.default_horizon
  else cell.aggregate.Replication.wall_clock.Stats.mean

let improvements t =
  let cases = List.sort_uniq compare (List.map (fun c -> c.case) t.cells) in
  let find solution case =
    List.find (fun c -> String.equal c.solution solution && String.equal c.case case) t.cells
  in
  List.filter_map
    (fun solution ->
      if String.equal solution "ML(opt-scale)" then None
      else
        Some
          ( solution,
            List.map
              (fun case ->
                let ml = wall_or_horizon (find "ML(opt-scale)" case) in
                let other = wall_or_horizon (find solution case) in
                1. -. (ml /. other))
              cases ))
    Paper_data.solution_names

let print ppf t =
  let row cell =
    let a = cell.aggregate in
    let wall =
      if a.Replication.completed_runs = 0 then
        Printf.sprintf ">= %s (horizon)" (Render.days Solutions.default_horizon)
      else Render.days a.Replication.wall_clock.Stats.mean
    in
    [ cell.case; cell.solution;
      Printf.sprintf "%.0fk" (cell.plan.Optimizer.n /. 1e3);
      wall;
      Render.days a.Replication.productive;
      Render.days a.Replication.checkpoint;
      Render.days (a.Replication.restart +. a.Replication.allocation);
      Render.days a.Replication.rollback;
      Printf.sprintf "%.1f" a.Replication.mean_failures;
      Printf.sprintf "%.4f" a.Replication.mean_efficiency ]
  in
  Render.table ppf
    ~headers:
      [ "case"; "solution"; "cores"; "wall (d)"; "prod (d)"; "ckpt (d)";
        "restart (d)"; "rollback (d)"; "failures"; "efficiency" ]
    ~rows:(List.map row t.cells);
  Format.fprintf ppf "@\nML(opt-scale) wall-clock reduction vs:@\n";
  List.iter
    (fun (solution, per_case) ->
      Format.fprintf ppf "  %-14s %s@\n" solution
        (String.concat "  " (List.map Render.pct per_case)))
    (improvements t)

let run_with ppf ~te_core_days ~label ~paper_note =
  Render.section ppf label;
  let t = compute ~te_core_days () in
  print ppf t;
  Format.fprintf ppf "@\npaper: %s@\n" paper_note

let run_fig5 ppf =
  run_with ppf ~te_core_days:3e6
    ~label:"Figure 5: time analysis (Te = 3m core-days, N* = 1m cores)"
    ~paper_note:
      "reductions of 58-84% vs SL(opt-scale), 7-26% vs ML(ori-scale), 79-88% vs \
       SL(ori-scale)"

let run_fig6 ppf =
  run_with ppf ~te_core_days:1e7
    ~label:"Figure 6: time analysis (Te = 10m core-days, N* = 1m cores)"
    ~paper_note:
      "gains over the ori-scale baseline shrink to 4.3-42.3% at this workload \
       (longer productive time dominates)"
