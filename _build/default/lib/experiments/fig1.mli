(** Fig. 1 — the speedup-vs-overhead tradeoff.

    Regenerates the paper's conceptual figure as a data series: expected
    wall-clock time against the execution scale, with and without the
    checkpoint model, showing that the optimal scale under failures is
    smaller than the failure-free ideal scale. *)

type point = {
  n : float;
  failure_free : float;  (** [T_e / g(N)], seconds *)
  with_checkpoints : float;  (** model-predicted [E(T_w)] with intervals
                                 optimized at this scale *)
}

val series : ?te_core_days:float -> ?case:string -> ?points:int -> unit -> point list
(** Log-spaced scales from 1,000 cores to the ideal scale.  Defaults:
    3e6 core-days, case "16-12-8-4", 25 points. *)

val optimal_scales : point list -> float * float
(** [(argmin with_checkpoints, argmin failure_free)] — the figure's two
    marked optima (the second is the right edge for a monotone curve). *)

val run : Format.formatter -> unit
