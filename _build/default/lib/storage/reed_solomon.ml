type t = {
  data : int;
  parity : int;
  matrix : int array array;  (* (data + parity) x data; top block = identity *)
}

(* --- small GF(256) matrix helpers ----------------------------------- *)

let gf_matrix_mul a b =
  let rows = Array.length a and inner = Array.length b in
  assert (inner > 0 && Array.length a.(0) = inner);
  let cols = Array.length b.(0) in
  Array.init rows (fun i ->
      Array.init cols (fun j ->
          let acc = ref 0 in
          for k = 0 to inner - 1 do
            acc := Gf256.add !acc (Gf256.mul a.(i).(k) b.(k).(j))
          done;
          !acc))

let gf_identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1 else 0))

(* In-place Gauss–Jordan inversion over GF(256). *)
let gf_invert m =
  let n = Array.length m in
  assert (n > 0 && Array.length m.(0) = n);
  let a = Array.map Array.copy m in
  let inv = gf_identity n in
  for col = 0 to n - 1 do
    if a.(col).(col) = 0 then begin
      (* Find a row below with a nonzero pivot and swap. *)
      let pivot = ref (-1) in
      for r = col + 1 to n - 1 do
        if !pivot < 0 && a.(r).(col) <> 0 then pivot := r
      done;
      if !pivot < 0 then invalid_arg "Reed_solomon: singular matrix";
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tmp = inv.(col) in
      inv.(col) <- inv.(!pivot);
      inv.(!pivot) <- tmp
    end;
    let scale = Gf256.inv a.(col).(col) in
    if scale <> 1 then
      for j = 0 to n - 1 do
        a.(col).(j) <- Gf256.mul a.(col).(j) scale;
        inv.(col).(j) <- Gf256.mul inv.(col).(j) scale
      done;
    for r = 0 to n - 1 do
      if r <> col && a.(r).(col) <> 0 then begin
        let factor = a.(r).(col) in
        for j = 0 to n - 1 do
          a.(r).(j) <- Gf256.add a.(r).(j) (Gf256.mul factor a.(col).(j));
          inv.(r).(j) <- Gf256.add inv.(r).(j) (Gf256.mul factor inv.(col).(j))
        done
      end
    done
  done;
  inv

(* --- codec construction ---------------------------------------------- *)

let vandermonde rows cols =
  Array.init rows (fun i -> Array.init cols (fun j -> Gf256.pow (i + 1) j))

let create ~data ~parity =
  if data < 1 then invalid_arg "Reed_solomon.create: data < 1";
  if parity < 1 then invalid_arg "Reed_solomon.create: parity < 1";
  if data + parity > 255 then invalid_arg "Reed_solomon.create: too many shards";
  (* Normalize a Vandermonde matrix so its top k x k block is the identity.
     The full matrix keeps the property that every k x k submatrix is
     invertible, and the code becomes systematic. *)
  let v = vandermonde (data + parity) data in
  let top = Array.init data (fun i -> v.(i)) in
  let top_inv = gf_invert top in
  let matrix = gf_matrix_mul v top_inv in
  { data; parity; matrix }

let data_shards t = t.data
let parity_shards t = t.parity
let total_shards t = t.data + t.parity

let parity_rows t = Array.init t.parity (fun i -> Array.copy t.matrix.(t.data + i))

(* --- encode / decode -------------------------------------------------- *)

let shard_length shards =
  let len = ref (-1) in
  Array.iter
    (fun s ->
      let l = Bytes.length s in
      if !len < 0 then len := l
      else if l <> !len then invalid_arg "Reed_solomon: shard lengths differ")
    shards;
  Int.max 0 !len

let apply_rows rows shards len =
  Array.map
    (fun row ->
      let out = Bytes.make len '\000' in
      Array.iteri
        (fun i shard ->
          let coef = row.(i) in
          if coef <> 0 then
            for b = 0 to len - 1 do
              let cur = Char.code (Bytes.get out b) in
              let v = Char.code (Bytes.get shard b) in
              Bytes.set out b (Char.chr (Gf256.add cur (Gf256.mul coef v)))
            done)
        shards;
      out)
    rows

let encode t data =
  if Array.length data <> t.data then invalid_arg "Reed_solomon.encode: wrong shard count";
  let len = shard_length data in
  apply_rows (parity_rows t) data len

let decode t shards =
  if Array.length shards <> total_shards t then
    invalid_arg "Reed_solomon.decode: wrong shard count";
  let survivors = ref [] in
  Array.iteri
    (fun i s -> match s with Some b -> survivors := (i, b) :: !survivors | None -> ())
    shards;
  let survivors = List.rev !survivors in
  if List.length survivors < t.data then
    invalid_arg "Reed_solomon.decode: not enough surviving shards";
  (* If every data shard survived, no algebra is needed. *)
  let all_data_alive =
    List.length (List.filter (fun (i, _) -> i < t.data) survivors) = t.data
  in
  if all_data_alive then
    Array.init t.data (fun i ->
        match shards.(i) with
        | Some b -> Bytes.copy b
        | None -> assert false)
  else begin
    let chosen = Array.of_list (List.filteri (fun k _ -> k < t.data) survivors) in
    let len = shard_length (Array.map snd chosen) in
    let sub = Array.map (fun (i, _) -> Array.copy t.matrix.(i)) chosen in
    let inv = gf_invert sub in
    apply_rows inv (Array.map snd chosen) len
  end

let verify t ~data ~parity =
  if Array.length parity <> t.parity then false
  else begin
    let expected = encode t data in
    let ok = ref true in
    Array.iteri (fun i p -> if not (Bytes.equal p expected.(i)) then ok := false) parity;
    !ok
  end
