type t = {
  locals : (string, Bytes.t) Hashtbl.t array;
  pfs : (string, Bytes.t) Hashtbl.t;
}

let create ~nodes =
  assert (nodes > 0);
  { locals = Array.init nodes (fun _ -> Hashtbl.create 16); pfs = Hashtbl.create 16 }

let node_count t = Array.length t.locals

let check_node t node = assert (node >= 0 && node < node_count t)

let put_local t ~node ~key value =
  check_node t node;
  Hashtbl.replace t.locals.(node) key (Bytes.copy value)

let get_local t ~node ~key =
  check_node t node;
  Option.map Bytes.copy (Hashtbl.find_opt t.locals.(node) key)

let delete_local t ~node ~key =
  check_node t node;
  Hashtbl.remove t.locals.(node) key

let local_keys t ~node =
  check_node t node;
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.locals.(node) [])

let local_bytes t ~node =
  check_node t node;
  Hashtbl.fold (fun _ v acc -> acc + Bytes.length v) t.locals.(node) 0

let put_pfs t ~key value = Hashtbl.replace t.pfs key (Bytes.copy value)
let get_pfs t ~key = Option.map Bytes.copy (Hashtbl.find_opt t.pfs key)
let delete_pfs t ~key = Hashtbl.remove t.pfs key
let pfs_keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.pfs [])

let crash_node t ~node =
  check_node t node;
  Hashtbl.reset t.locals.(node)

let crash_nodes t nodes = List.iter (fun node -> crash_node t ~node) nodes
