(** Arithmetic in the Galois field GF(2^8).

    The Reed–Solomon encoding used by checkpoint level 3 (paper references
    [15], [16] — Jerasure) works over GF(256).  Elements are ints in
    [\[0, 255\]]; addition is XOR; multiplication uses log/antilog tables
    built from the primitive polynomial [x^8+x^4+x^3+x^2+1] (0x11D). *)

val add : int -> int -> int
(** Field addition (= subtraction = XOR). *)

val sub : int -> int -> int

val mul : int -> int -> int
(** Field multiplication.  Requires both operands in [\[0, 255\]]. *)

val div : int -> int -> int
(** [div a b] requires [b <> 0].  @raise Division_by_zero otherwise. *)

val inv : int -> int
(** Multiplicative inverse.  @raise Division_by_zero on [0]. *)

val pow : int -> int -> int
(** [pow a k] with [k >= 0]; [pow 0 0 = 1] by convention. *)

val exp_table : int -> int
(** [exp_table i] is the primitive element 2 raised to [i mod 255]. *)

val log_table : int -> int
(** Discrete log base 2 of a nonzero element.
    @raise Division_by_zero on [0]. *)
