(** Systematic Reed–Solomon erasure coding over GF(256).

    Checkpoint level 3 encodes the checkpoints of a group of [k] nodes into
    [m] additional parity blocks so that any [m] simultaneous node losses
    within the group remain recoverable (paper Section I and [15], [16]).

    The code is systematic: the first [k] shards are the data itself, the
    last [m] are parity.  The generator matrix is derived from a Vandermonde
    matrix by Gaussian elimination so that its top [k x k] block is the
    identity — the classic Plank construction — which guarantees every
    [k x k] submatrix used in decoding is invertible. *)

type t

val create : data:int -> parity:int -> t
(** [create ~data ~parity] builds a codec for [data] data shards and
    [parity] parity shards.  Requires [data >= 1], [parity >= 1] and
    [data + parity <= 255]. *)

val data_shards : t -> int
val parity_shards : t -> int
val total_shards : t -> int

val encode : t -> Bytes.t array -> Bytes.t array
(** [encode t data] returns the [parity] shards for the [data] shards.
    All shards must have the same length.  Inputs are not modified. *)

val decode : t -> (Bytes.t option) array -> Bytes.t array
(** [decode t shards] reconstructs the original data shards from any
    surviving subset.  [shards] has length [data + parity]; [None] marks an
    erased shard.  At least [data] shards must survive.
    @raise Invalid_argument if too few shards survive or lengths differ. *)

val parity_rows : t -> int array array
(** The [parity x data] coding matrix (for tests and inspection). *)

val verify : t -> data:Bytes.t array -> parity:Bytes.t array -> bool
(** [verify t ~data ~parity] re-encodes and compares — a cheap integrity
    check used by the FTI runtime after a recovery. *)
