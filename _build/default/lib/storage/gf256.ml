(* Log/antilog tables for GF(2^8) with primitive polynomial 0x11D. *)

let exp = Array.make 512 0
let log = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp.(i) <- !x;
    log.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor 0x11D
  done;
  (* Duplicate the table so mul can skip the mod 255. *)
  for i = 255 to 511 do
    exp.(i) <- exp.(i - 255)
  done

let in_field a = a >= 0 && a < 256

let add a b =
  assert (in_field a && in_field b);
  a lxor b

let sub = add

let mul a b =
  assert (in_field a && in_field b);
  if a = 0 || b = 0 then 0 else exp.(log.(a) + log.(b))

let inv a =
  assert (in_field a);
  if a = 0 then raise Division_by_zero else exp.(255 - log.(a))

let div a b =
  assert (in_field a && in_field b);
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp.(log.(a) + 255 - log.(b))

let pow a k =
  assert (in_field a && k >= 0);
  if k = 0 then 1
  else if a = 0 then 0
  else exp.(log.(a) * k mod 255)

let exp_table i = exp.(((i mod 255) + 255) mod 255)

let log_table a =
  assert (in_field a);
  if a = 0 then raise Division_by_zero else log.(a)
