lib/storage/pfs_model.mli:
