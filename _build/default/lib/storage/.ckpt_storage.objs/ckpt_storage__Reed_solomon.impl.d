lib/storage/reed_solomon.ml: Array Bytes Char Gf256 Int List
