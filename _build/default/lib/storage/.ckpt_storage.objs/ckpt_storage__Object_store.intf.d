lib/storage/object_store.mli: Bytes
