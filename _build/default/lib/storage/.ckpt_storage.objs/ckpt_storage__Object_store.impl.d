lib/storage/object_store.ml: Array Bytes Hashtbl List Option
