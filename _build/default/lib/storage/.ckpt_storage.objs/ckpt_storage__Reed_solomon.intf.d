lib/storage/reed_solomon.mli: Bytes
