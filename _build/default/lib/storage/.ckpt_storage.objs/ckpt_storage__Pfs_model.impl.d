lib/storage/pfs_model.ml:
