(** Timing model of a parallel file system under checkpoint traffic.

    The paper's characterization (Table II) shows level-1..3 overheads flat
    in the execution scale while the PFS overhead grows roughly linearly —
    metadata pressure and congestion from one checkpoint file per process.
    This model produces that shape from first principles:

    [write_time N bytes_per_proc =
       base_latency + metadata_cost * N + N * bytes_per_proc / bandwidth]

    and symmetrically for reads.  With the default coefficients the model
    approximates the Fusion-cluster PFS column of Table II; a
    constant-overhead PFS (paper Section IV-B, Blue Waters-style) is the
    special case [metadata_cost = 0] with a bandwidth that scales with the
    writer count. *)

type sharing =
  | Shared  (** one aggregate pipe split across all writers *)
  | Per_writer  (** bandwidth scales with the writer count *)

type t = {
  base_latency : float;  (** seconds, fixed per collective operation *)
  metadata_cost : float;  (** seconds per participating process *)
  bandwidth : float;  (** bytes/second (aggregate or per writer, see [sharing]) *)
  read_bandwidth : float;  (** bytes/second for restart reads *)
  sharing : sharing;
}

val default : t
(** Coefficients fitted so that checkpointing ~100 MB per process across
    128–1,024 processes reproduces the Table II PFS column within jitter. *)

val scalable : t
(** An idealized PFS whose effective bandwidth grows with the writer count
    (constant time per writer) — the Blue Waters-style configuration of
    the paper's Table IV study. *)

val write_time : t -> procs:int -> bytes_per_proc:float -> float
(** Seconds to write one checkpoint wave.  Requires [procs >= 1]. *)

val read_time : t -> procs:int -> bytes_per_proc:float -> float
(** Seconds to read checkpoints back on restart. *)
