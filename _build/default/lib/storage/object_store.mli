(** In-memory emulation of the storage substrate: one volatile local store
    per node (RAM disk / NVDIMM / SSD in FTI's deployments) plus one
    durable parallel file system namespace.

    Crashing a node wipes its local store — exactly the damage model the
    four checkpoint levels are designed around.  The FTI runtime
    ([ckpt_fti]) layers partner copies and Reed–Solomon groups on top. *)

type t

val create : nodes:int -> t
(** [create ~nodes] builds empty local stores for nodes [0 .. nodes-1] and
    an empty PFS. *)

val node_count : t -> int

val put_local : t -> node:int -> key:string -> Bytes.t -> unit
(** Stores a copy of the value (later mutation of the caller's buffer does
    not affect the store). *)

val get_local : t -> node:int -> key:string -> Bytes.t option
(** Returns a copy, or [None] if absent (or lost in a crash). *)

val delete_local : t -> node:int -> key:string -> unit

val local_keys : t -> node:int -> string list
(** Keys currently held by a node, sorted. *)

val local_bytes : t -> node:int -> int
(** Total payload bytes held by a node's local store. *)

val put_pfs : t -> key:string -> Bytes.t -> unit
val get_pfs : t -> key:string -> Bytes.t option
val delete_pfs : t -> key:string -> unit
val pfs_keys : t -> string list

val crash_node : t -> node:int -> unit
(** Drop everything in the node's local store (the node itself comes back
    empty — replacement hardware). *)

val crash_nodes : t -> int list -> unit
