type sharing = Shared | Per_writer

type t = {
  base_latency : float;
  metadata_cost : float;
  bandwidth : float;
  read_bandwidth : float;
  sharing : sharing;
}

(* The linear coefficient of Table II (alpha_4 = 0.0212 s/process) bundles
   metadata pressure and congestion at the characterized ~100 MB/process
   file size; we expose it as the metadata term and keep the bandwidth term
   as a second-order correction. *)
let default =
  { base_latency = 5.0;
    metadata_cost = 0.02;
    bandwidth = 50e9;
    read_bandwidth = 50e9;
    sharing = Shared }

let scalable =
  { base_latency = 5.0;
    metadata_cost = 0.;
    bandwidth = 100e6;
    read_bandwidth = 100e6;
    sharing = Per_writer }

let transfer_time ~bw ~sharing ~procs ~bytes_per_proc =
  assert (bw > 0.);
  match sharing with
  | Shared -> float_of_int procs *. bytes_per_proc /. bw
  | Per_writer -> bytes_per_proc /. bw

let write_time t ~procs ~bytes_per_proc =
  assert (procs >= 1 && bytes_per_proc >= 0.);
  t.base_latency
  +. (t.metadata_cost *. float_of_int procs)
  +. transfer_time ~bw:t.bandwidth ~sharing:t.sharing ~procs ~bytes_per_proc

let read_time t ~procs ~bytes_per_proc =
  assert (procs >= 1 && bytes_per_proc >= 0.);
  t.base_latency
  +. (t.metadata_cost *. float_of_int procs)
  +. transfer_time ~bw:t.read_bandwidth ~sharing:t.sharing ~procs ~bytes_per_proc
