type t = { nrows : int; ncols : int; data : float array }

exception Singular

let create ~rows ~cols =
  assert (rows > 0 && cols > 0);
  { nrows = rows; ncols = cols; data = Array.make (rows * cols) 0. }

let rows t = t.nrows
let cols t = t.ncols
let index t i j = (i * t.ncols) + j

let get t i j =
  assert (i >= 0 && i < t.nrows && j >= 0 && j < t.ncols);
  t.data.(index t i j)

let set t i j v =
  assert (i >= 0 && i < t.nrows && j >= 0 && j < t.ncols);
  t.data.(index t i j) <- v

let of_arrays arr =
  let nrows = Array.length arr in
  assert (nrows > 0);
  let ncols = Array.length arr.(0) in
  Array.iter (fun row -> assert (Array.length row = ncols)) arr;
  let t = create ~rows:nrows ~cols:ncols in
  Array.iteri (fun i row -> Array.iteri (fun j v -> set t i j v) row) arr;
  t

let to_arrays t = Array.init t.nrows (fun i -> Array.init t.ncols (fun j -> get t i j))
let copy t = { t with data = Array.copy t.data }

let identity n =
  let t = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    set t i i 1.
  done;
  t

let transpose t =
  let r = create ~rows:t.ncols ~cols:t.nrows in
  for i = 0 to t.nrows - 1 do
    for j = 0 to t.ncols - 1 do
      set r j i (get t i j)
    done
  done;
  r

let mul a b =
  assert (a.ncols = b.nrows);
  let r = create ~rows:a.nrows ~cols:b.ncols in
  for i = 0 to a.nrows - 1 do
    for k = 0 to a.ncols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.ncols - 1 do
          set r i j (get r i j +. (aik *. get b k j))
        done
    done
  done;
  r

let mul_vec a v =
  assert (a.ncols = Array.length v);
  Array.init a.nrows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.ncols - 1 do
        acc := !acc +. (get a i j *. v.(j))
      done;
      !acc)

(* Gaussian elimination with partial pivoting on an augmented copy. *)
let eliminate a b =
  assert (a.nrows = a.ncols && a.nrows = Array.length b);
  let n = a.nrows in
  let m = copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    let pivot_row = ref col in
    for i = col + 1 to n - 1 do
      if Float.abs (get m i col) > Float.abs (get m !pivot_row col) then pivot_row := i
    done;
    if Float.abs (get m !pivot_row col) < 1e-300 then raise Singular;
    if !pivot_row <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !pivot_row j);
        set m !pivot_row j tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot_row);
      x.(!pivot_row) <- tmp
    end;
    for i = col + 1 to n - 1 do
      let factor = get m i col /. get m col col in
      if factor <> 0. then begin
        for j = col to n - 1 do
          set m i j (get m i j -. (factor *. get m col j))
        done;
        x.(i) <- x.(i) -. (factor *. x.(col))
      end
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get m i j *. x.(j))
    done;
    x.(i) <- !acc /. get m i i
  done;
  x

let solve a b = eliminate a b

let inverse a =
  assert (a.nrows = a.ncols);
  let n = a.nrows in
  let r = create ~rows:n ~cols:n in
  for col = 0 to n - 1 do
    let e = Array.make n 0. in
    e.(col) <- 1.;
    let x = solve a e in
    for i = 0 to n - 1 do
      set r i col x.(i)
    done
  done;
  r

let determinant a =
  assert (a.nrows = a.ncols);
  let n = a.nrows in
  let m = copy a in
  let det = ref 1. in
  (try
     for col = 0 to n - 1 do
       let pivot_row = ref col in
       for i = col + 1 to n - 1 do
         if Float.abs (get m i col) > Float.abs (get m !pivot_row col) then pivot_row := i
       done;
       if get m !pivot_row col = 0. then begin
         det := 0.;
         raise Exit
       end;
       if !pivot_row <> col then begin
         det := -. !det;
         for j = 0 to n - 1 do
           let tmp = get m col j in
           set m col j (get m !pivot_row j);
           set m !pivot_row j tmp
         done
       end;
       det := !det *. get m col col;
       for i = col + 1 to n - 1 do
         let factor = get m i col /. get m col col in
         for j = col to n - 1 do
           set m i j (get m i j -. (factor *. get m col j))
         done
       done
     done
   with Exit -> ());
  !det

(* Householder QR. *)
let qr a =
  let m = a.nrows and n = a.ncols in
  assert (m >= n);
  let r = copy a in
  let q = identity m in
  let apply_householder mat v from_col =
    (* mat <- (I - 2 v v^T) mat, restricted to columns >= from_col *)
    for j = from_col to mat.ncols - 1 do
      let dot = ref 0. in
      for i = 0 to m - 1 do
        dot := !dot +. (v.(i) *. get mat i j)
      done;
      let s = 2. *. !dot in
      if s <> 0. then
        for i = 0 to m - 1 do
          set mat i j (get mat i j -. (s *. v.(i)))
        done
    done
  in
  for k = 0 to n - 1 do
    let norm = ref 0. in
    for i = k to m - 1 do
      norm := !norm +. (get r i k *. get r i k)
    done;
    let norm = sqrt !norm in
    if norm > 0. then begin
      let alpha = if get r k k > 0. then -.norm else norm in
      let v = Array.make m 0. in
      v.(k) <- get r k k -. alpha;
      for i = k + 1 to m - 1 do
        v.(i) <- get r i k
      done;
      let vnorm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v) in
      if vnorm > 0. then begin
        for i = 0 to m - 1 do
          v.(i) <- v.(i) /. vnorm
        done;
        apply_householder r v k;
        apply_householder q v 0
      end
    end
  done;
  (transpose q, r)

let solve_least_squares a b =
  assert (a.nrows = Array.length b && a.nrows >= a.ncols);
  let q, r = qr a in
  let n = a.ncols in
  (* x solves R[0..n-1,0..n-1] x = (Q^T b)[0..n-1]. *)
  let qtb = mul_vec (transpose q) b in
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    if Float.abs (get r i i) < 1e-300 then raise Singular;
    let acc = ref qtb.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get r i j *. x.(j))
    done;
    x.(i) <- !acc /. get r i i
  done;
  x

let equal ?(tol = 1e-9) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && begin
       let ok = ref true in
       Array.iteri (fun i v -> if Float.abs (v -. b.data.(i)) > tol then ok := false) a.data;
       !ok
     end

let pp ppf t =
  for i = 0 to t.nrows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to t.ncols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%g" (get t i j)
    done;
    Format.fprintf ppf "]@\n"
  done
