type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  assert (hi > lo && bins > 0);
  { lo; hi; counts = Array.make bins 0; total = 0; underflow = 0; overflow = 0 }

let bins t = Array.length t.counts
let width t = (t.hi -. t.lo) /. float_of_int (bins t)

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. width t) in
    let i = if i >= bins t then bins t - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let bin_count t i = t.counts.(i)
let underflow t = t.underflow
let overflow t = t.overflow

let bin_bounds t i =
  assert (i >= 0 && i < bins t);
  let w = width t in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let in_range t = t.total - t.underflow - t.overflow

let density t i =
  let n = in_range t in
  if n = 0 then 0.
  else float_of_int t.counts.(i) /. float_of_int n /. width t

let chi_squared_uniform t =
  let n = in_range t in
  if n = 0 then 0.
  else begin
    let expected = float_of_int n /. float_of_int (bins t) in
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. t.counts
  end
