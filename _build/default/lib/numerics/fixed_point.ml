type 'a result = { value : 'a; iterations : int; converged : bool }

exception Diverged of string

let iterate ?(max_iter = 10_000) ?(on_failure = `Return_last) ~step ~distance ~tol x0 =
  let rec loop x iter =
    if iter >= max_iter then
      match on_failure with
      | `Raise -> raise (Diverged (Printf.sprintf "fixed point: %d iterations exhausted" iter))
      | `Return_last -> { value = x; iterations = iter; converged = false }
    else begin
      let x' = step x in
      if distance x x' <= tol then { value = x'; iterations = iter + 1; converged = true }
      else loop x' (iter + 1)
    end
  in
  loop x0 0

let iterate_scalar ?(max_iter = 10_000) ?(damping = 1.) ~step ~tol x0 =
  assert (damping > 0. && damping <= 1.);
  let damped_step x = ((1. -. damping) *. x) +. (damping *. step x) in
  iterate ~max_iter ~step:damped_step ~distance:(fun a b -> Float.abs (a -. b)) ~tol x0

let max_abs_diff xs ys =
  assert (Array.length xs = Array.length ys);
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := Float.max !acc (Float.abs (x -. ys.(i)))) xs;
  !acc
