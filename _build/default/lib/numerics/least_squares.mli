(** Linear least-squares fitting.

    The paper derives all model coefficients from measurements by least
    squares: the speedup quadratic of Eq. (12) from measured speedups
    (Fig. 2) and the overhead laws [C_i(N) = eps_i + alpha_i * H_c(N)] from
    the FTI characterization of Table II. *)

type fit = {
  coefficients : float array;
  residual : float;  (** root-mean-square residual of the fit *)
  r_squared : float;  (** coefficient of determination *)
}

val fit_basis : basis:(float -> float array) -> xs:float array -> ys:float array -> fit
(** [fit_basis ~basis ~xs ~ys] solves the linear model
    [y ~ sum_j c_j * (basis x).(j)] in the least-squares sense via QR.
    Requires at least as many points as basis functions. *)

val polyfit : degree:int -> xs:float array -> ys:float array -> fit
(** Polynomial fit [c_0 + c_1 x + ... + c_d x^d]. *)

val polyfit_through_origin : degree:int -> xs:float array -> ys:float array -> fit
(** Polynomial fit with no constant term — [c_1 x + ... + c_d x^d].  The
    speedup quadratic of Eq. (12) must pass through the origin, so Fig. 2's
    fits use this variant; [coefficients.(0)] is the slope [kappa] and
    [coefficients.(1)] the quadratic coefficient [-kappa / (2 N_star)]. *)

val fit_affine_in : h:(float -> float) -> xs:float array -> ys:float array -> fit
(** [fit_affine_in ~h] fits [y ~ eps + alpha * h x]; this is exactly the
    overhead law of paper Eq. (19)/(20).  [coefficients = [|eps; alpha|]]. *)

val eval_poly : float array -> float -> float
(** [eval_poly coeffs x] evaluates [c_0 + c_1 x + ...] by Horner. *)
