lib/numerics/cg.mli: Bytes Sparse
