lib/numerics/histogram.mli:
