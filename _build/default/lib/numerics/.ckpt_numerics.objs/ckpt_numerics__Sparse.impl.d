lib/numerics/sparse.ml: Array Float Hashtbl List Option
