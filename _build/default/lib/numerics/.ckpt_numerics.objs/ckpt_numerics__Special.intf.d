lib/numerics/special.mli:
