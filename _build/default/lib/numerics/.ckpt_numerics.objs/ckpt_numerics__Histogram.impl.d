lib/numerics/histogram.ml: Array
