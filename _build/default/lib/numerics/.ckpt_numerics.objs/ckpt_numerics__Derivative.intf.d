lib/numerics/derivative.mli:
