lib/numerics/sparse.mli:
