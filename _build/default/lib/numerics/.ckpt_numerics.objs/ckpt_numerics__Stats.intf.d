lib/numerics/stats.mli:
