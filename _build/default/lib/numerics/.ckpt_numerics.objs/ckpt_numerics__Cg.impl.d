lib/numerics/cg.ml: Array Bytes Int64 Option Sparse
