lib/numerics/roots.ml: Float Printf
