lib/numerics/roots.mli:
