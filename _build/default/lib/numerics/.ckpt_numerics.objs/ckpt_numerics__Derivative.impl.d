lib/numerics/derivative.ml: Float
