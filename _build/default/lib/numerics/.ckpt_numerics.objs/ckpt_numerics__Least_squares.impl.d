lib/numerics/least_squares.ml: Array Matrix
