lib/numerics/least_squares.mli:
