lib/numerics/rng.mli:
