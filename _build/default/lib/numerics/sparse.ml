type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;  (* length nrows + 1 *)
  col_idx : int array;  (* length nnz, ascending within each row *)
  values : float array;
}

let rows t = t.nrows
let cols t = t.ncols
let nnz t = Array.length t.values

let of_triplets ~rows ~cols entries =
  if rows <= 0 || cols <= 0 then invalid_arg "Sparse.of_triplets: empty shape";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg "Sparse.of_triplets: index out of range")
    entries;
  (* Sum duplicates via a per-position table, then sort. *)
  let table : (int * int, float) Hashtbl.t = Hashtbl.create (List.length entries) in
  List.iter
    (fun (i, j, v) ->
      let prev = Option.value (Hashtbl.find_opt table (i, j)) ~default:0. in
      Hashtbl.replace table (i, j) (prev +. v))
    entries;
  let cells =
    Hashtbl.fold (fun (i, j) v acc -> if v = 0. then acc else (i, j, v) :: acc) table []
  in
  let cells = List.sort compare cells in
  let n = List.length cells in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0. in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_idx.(k) <- j;
      values.(k) <- v)
    cells;
  for i = 1 to rows do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  { nrows = rows; ncols = cols; row_ptr; col_idx; values }

let row_iter t i f =
  assert (i >= 0 && i < t.nrows);
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let get t i j =
  assert (i >= 0 && i < t.nrows && j >= 0 && j < t.ncols);
  (* Binary search within the row's column indices. *)
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mul_vec t x =
  if Array.length x <> t.ncols then invalid_arg "Sparse.mul_vec: size mismatch";
  Array.init t.nrows (fun i ->
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
      done;
      !acc)

let transpose t =
  let triplets = ref [] in
  for i = 0 to t.nrows - 1 do
    row_iter t i (fun j v -> triplets := (j, i, v) :: !triplets)
  done;
  of_triplets ~rows:t.ncols ~cols:t.nrows !triplets

let is_symmetric ?(tol = 1e-12) t =
  t.nrows = t.ncols
  && begin
       let ok = ref true in
       for i = 0 to t.nrows - 1 do
         row_iter t i (fun j v -> if Float.abs (v -. get t j i) > tol then ok := false)
       done;
       !ok
     end

let poisson_2d ~n =
  assert (n >= 1);
  let idx i j = (i * n) + j in
  let triplets = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let me = idx i j in
      triplets := (me, me, 4.) :: !triplets;
      if i > 0 then triplets := (me, idx (i - 1) j, -1.) :: !triplets;
      if i < n - 1 then triplets := (me, idx (i + 1) j, -1.) :: !triplets;
      if j > 0 then triplets := (me, idx i (j - 1), -1.) :: !triplets;
      if j < n - 1 then triplets := (me, idx i (j + 1), -1.) :: !triplets
    done
  done;
  of_triplets ~rows:(n * n) ~cols:(n * n) !triplets
