(** Numerical differentiation.

    The optimizer uses analytic derivatives (paper Eq. 23/24); this module
    exists to cross-check them — property tests compare every analytic
    derivative in the model against a central finite difference. *)

val central : ?h:float -> f:(float -> float) -> float -> float
(** [central ~f x] approximates [f' x] with a central difference.  The
    default step scales with [x] ([h = 1e-6 * (1 + |x|)]). *)

val richardson : ?h:float -> f:(float -> float) -> float -> float
(** Richardson-extrapolated central difference (two step sizes), one order
    more accurate than {!central}. *)

val second : ?h:float -> f:(float -> float) -> float -> float
(** [second ~f x] approximates [f'' x]; used to verify convexity claims
    (paper Section III-A/C). *)
