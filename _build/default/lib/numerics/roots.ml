type outcome = { root : float; iterations : int; residual : float }

exception No_bracket of string
exception No_convergence of string

let sign x = if x > 0. then 1 else if x < 0. then -1 else 0

let check_bracket name flo fhi =
  if sign flo * sign fhi > 0 then
    raise (No_bracket (Printf.sprintf "%s: f(lo)=%g and f(hi)=%g have the same sign" name flo fhi))

let bisect_gen ~tol_x ~max_iter ~f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  check_bracket "bisect" flo fhi;
  if flo = 0. then { root = lo; iterations = 0; residual = 0. }
  else if fhi = 0. then { root = hi; iterations = 0; residual = 0. }
  else begin
    let rec loop lo hi flo iter =
      let mid = 0.5 *. (lo +. hi) in
      let fmid = f mid in
      if hi -. lo < tol_x || fmid = 0. || iter >= max_iter then
        { root = mid; iterations = iter; residual = Float.abs fmid }
      else if sign flo * sign fmid <= 0 then loop lo mid flo (iter + 1)
      else loop mid hi fmid (iter + 1)
    in
    loop lo hi flo 0
  end

let bisect ?(tol_x = 1e-9) ?(max_iter = 200) ~f ~lo ~hi () =
  bisect_gen ~tol_x ~max_iter ~f ~lo ~hi

let bisect_integer ~f ~lo ~hi () = bisect_gen ~tol_x:0.5 ~max_iter:200 ~f ~lo ~hi

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~f' ~x0 () =
  let rec loop x iter =
    if iter >= max_iter then
      raise (No_convergence (Printf.sprintf "newton: %d iterations exhausted at x=%g" iter x));
    let fx = f x in
    if Float.abs fx <= tol then { root = x; iterations = iter; residual = Float.abs fx }
    else begin
      let d = f' x in
      if d = 0. || not (Float.is_finite d) then
        raise (No_convergence (Printf.sprintf "newton: derivative %g at x=%g" d x));
      let x' = x -. (fx /. d) in
      if Float.abs (x' -. x) <= tol *. (1. +. Float.abs x) then
        { root = x'; iterations = iter + 1; residual = Float.abs (f x') }
      else loop x' (iter + 1)
    end
  in
  loop x0 0

let secant ?(tol = 1e-12) ?(max_iter = 100) ~f ~x0 ~x1 () =
  let rec loop xa xb fa fb iter =
    if iter >= max_iter then
      raise (No_convergence (Printf.sprintf "secant: %d iterations exhausted at x=%g" iter xb));
    if Float.abs fb <= tol then { root = xb; iterations = iter; residual = Float.abs fb }
    else begin
      let denom = fb -. fa in
      if denom = 0. then raise (No_convergence "secant: flat chord");
      let x' = xb -. (fb *. (xb -. xa) /. denom) in
      loop xb x' fb (f x') (iter + 1)
    end
  in
  loop x0 x1 (f x0) (f x1) 0

(* Brent's method (inverse quadratic / secant steps with bisection
   safeguards), following the standard formulation. *)
let brent ?(tol = 1e-12) ?(max_iter = 200) ~f ~lo ~hi () =
  let fa0 = f lo and fb0 = f hi in
  check_bracket "brent" fa0 fb0;
  let a = ref lo and b = ref hi and fa = ref fa0 and fb = ref fb0 in
  if Float.abs !fa < Float.abs !fb then begin
    let t = !a in a := !b; b := t;
    let t = !fa in fa := !fb; fb := t
  end;
  let c = ref !a and fc = ref !fa and d = ref !a in
  let mflag = ref true in
  let iter = ref 0 in
  let result = ref None in
  while !result = None do
    if !fb = 0. || Float.abs (!b -. !a) < tol then
      result := Some { root = !b; iterations = !iter; residual = Float.abs !fb }
    else if !iter >= max_iter then raise (No_convergence "brent: iteration budget exhausted")
    else begin
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* inverse quadratic interpolation *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_guard = ((3. *. !a) +. !b) /. 4. in
      let between = if lo_guard < !b then s > lo_guard && s < !b else s > !b && s < lo_guard in
      let use_bisection =
        (not between)
        || (!mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2.)
        || ((not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.)
        || (!mflag && Float.abs (!b -. !c) < tol)
        || ((not !mflag) && Float.abs (!c -. !d) < tol)
      in
      let s = if use_bisection then (!a +. !b) /. 2. else s in
      mflag := use_bisection;
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0. then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if Float.abs !fa < Float.abs !fb then begin
        let t = !a in a := !b; b := t;
        let t = !fa in fa := !fb; fb := t
      end
    end
  done;
  match !result with
  | Some r -> r
  | None -> assert false

let minimize_golden ?(tol = 1e-9) ?(max_iter = 500) ~f ~lo ~hi () =
  let phi = (sqrt 5. -. 1.) /. 2. in
  let rec loop a b x1 x2 f1 f2 iter =
    if b -. a < tol || iter >= max_iter then
      let m = 0.5 *. (a +. b) in
      { root = m; iterations = iter; residual = f m }
    else if f1 < f2 then begin
      let b = x2 and x2 = x1 and f2 = f1 in
      let x1 = b -. (phi *. (b -. a)) in
      loop a b x1 x2 (f x1) f2 (iter + 1)
    end
    else begin
      let a = x1 and x1 = x2 and f1 = f2 in
      let x2 = a +. (phi *. (b -. a)) in
      loop a b x1 x2 f1 (f x2) (iter + 1)
    end
  in
  let x1 = hi -. (phi *. (hi -. lo)) in
  let x2 = lo +. (phi *. (hi -. lo)) in
  loop lo hi x1 x2 (f x1) (f x2) 0
