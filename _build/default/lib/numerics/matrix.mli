(** Small dense matrices over floats.

    Sized for the library's needs — least-squares fits of speedup and
    overhead curves (a handful of coefficients) and test oracles — not for
    large-scale linear algebra.  Row-major storage. *)

type t

exception Singular
(** Raised by {!solve}, {!inverse} and {!lu} when elimination hits a zero
    pivot (up to partial pivoting). *)

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. *)

val of_arrays : float array array -> t
(** [of_arrays rows] copies a rectangular array-of-rows.  All rows must
    have equal length. *)

val to_arrays : t -> float array array
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val identity : int -> t
val transpose : t -> t

val mul : t -> t -> t
(** Matrix product.  Dimensions must agree. *)

val mul_vec : t -> float array -> float array
(** Matrix–vector product. *)

val solve : t -> float array -> float array
(** [solve a b] solves the square system [a x = b] by Gaussian elimination
    with partial pivoting.  @raise Singular on rank deficiency. *)

val inverse : t -> t
(** @raise Singular on rank deficiency. *)

val determinant : t -> float

val qr : t -> t * t
(** [qr a] is a Householder QR factorization [(q, r)] with [a = q * r],
    [q] orthogonal, [r] upper triangular.  Requires [rows a >= cols a]. *)

val solve_least_squares : t -> float array -> float array
(** [solve_least_squares a b] minimizes [||a x - b||_2] via QR; this is the
    backend of {!Least_squares}.  Requires [rows a >= cols a].
    @raise Singular if [a] is rank deficient. *)

val equal : ?tol:float -> t -> t -> bool
(** Entry-wise comparison with absolute tolerance (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
