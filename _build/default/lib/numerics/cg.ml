type state = {
  x : float array;
  r : float array;
  p : float array;
  rs : float;
  iteration : int;
}

let dot a b =
  assert (Array.length a = Array.length b);
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let init ~a ~b ?x0 () =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then invalid_arg "Cg.init: matrix not square";
  if Array.length b <> n then invalid_arg "Cg.init: rhs size mismatch";
  let x =
    match x0 with
    | None -> Array.make n 0.
    | Some x0 ->
        if Array.length x0 <> n then invalid_arg "Cg.init: x0 size mismatch";
        Array.copy x0
  in
  let ax = Sparse.mul_vec a x in
  let r = Array.init n (fun i -> b.(i) -. ax.(i)) in
  { x; r; p = Array.copy r; rs = dot r r; iteration = 0 }

let step ~a s =
  if s.rs = 0. then { s with iteration = s.iteration + 1 }
  else begin
    let ap = Sparse.mul_vec a s.p in
    let alpha = s.rs /. dot s.p ap in
    let n = Array.length s.x in
    let x = Array.init n (fun i -> s.x.(i) +. (alpha *. s.p.(i))) in
    let r = Array.init n (fun i -> s.r.(i) -. (alpha *. ap.(i))) in
    let rs' = dot r r in
    let beta = rs' /. s.rs in
    let p = Array.init n (fun i -> r.(i) +. (beta *. s.p.(i))) in
    { x; r; p; rs = rs'; iteration = s.iteration + 1 }
  end

let residual_norm s = sqrt s.rs
let converged ?(tol = 1e-10) s = residual_norm s <= tol

let solve ?tol ?max_iter ~a ~b () =
  let max_iter = Option.value max_iter ~default:(4 * Sparse.rows a) in
  let rec loop s =
    if converged ?tol s || s.iteration >= max_iter then s else loop (step ~a s)
  in
  loop (init ~a ~b ())

(* Layout: iteration, n, then x, r, p, rs as little-endian doubles. *)
let serialize s =
  let n = Array.length s.x in
  let buf = Bytes.create (16 + (8 * ((3 * n) + 1))) in
  Bytes.set_int64_le buf 0 (Int64.of_int s.iteration);
  Bytes.set_int64_le buf 8 (Int64.of_int n);
  let put off arr =
    Array.iteri
      (fun i v -> Bytes.set_int64_le buf (off + (8 * i)) (Int64.bits_of_float v))
      arr
  in
  put 16 s.x;
  put (16 + (8 * n)) s.r;
  put (16 + (16 * n)) s.p;
  Bytes.set_int64_le buf (16 + (24 * n)) (Int64.bits_of_float s.rs);
  buf

let deserialize buf =
  if Bytes.length buf < 16 then invalid_arg "Cg.deserialize: truncated";
  let iteration = Int64.to_int (Bytes.get_int64_le buf 0) in
  let n = Int64.to_int (Bytes.get_int64_le buf 8) in
  if n < 0 || Bytes.length buf <> 16 + (8 * ((3 * n) + 1)) then
    invalid_arg "Cg.deserialize: inconsistent size";
  let read off =
    Array.init n (fun i -> Int64.float_of_bits (Bytes.get_int64_le buf (off + (8 * i))))
  in
  { x = read 16;
    r = read (16 + (8 * n));
    p = read (16 + (16 * n));
    rs = Int64.float_of_bits (Bytes.get_int64_le buf (16 + (24 * n)));
    iteration }

let equal a b =
  a.iteration = b.iteration && a.rs = b.rs && a.x = b.x && a.r = b.r && a.p = b.p
