(** Summary statistics for experiment replications.

    Every simulated configuration is replicated (the paper averages 100
    random runs); this module computes the means, dispersions and
    confidence intervals reported in EXPERIMENTS.md. *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** unbiased sample variance *)
  std : float;
  min : float;
  max : float;
}

val mean : float array -> float
(** [mean xs] is the arithmetic mean.  Requires a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance; [0.] when fewer than two samples. *)

val std : float array -> float
val min : float array -> float
val max : float array -> float

val summarize : float array -> summary
(** One pass over the data producing all summary fields. *)

val median : float array -> float
(** [median xs] does not modify [xs]. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 1\]], linear interpolation between
    order statistics. *)

val confidence95 : float array -> float * float
(** [confidence95 xs] is the (lo, hi) 95 % normal-approximation confidence
    interval on the mean. *)

val relative_error : expected:float -> float -> float
(** [relative_error ~expected v] is [|v - expected| / |expected|]; used to
    compare measured results against the paper's values. *)

(** Streaming mean/variance (Welford), for accumulating per-run metrics
    without retaining the samples. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val std : t -> float
end
