type fit = { coefficients : float array; residual : float; r_squared : float }

let fit_basis ~basis ~xs ~ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n > 0);
  let width = Array.length (basis xs.(0)) in
  assert (n >= width);
  let design = Matrix.create ~rows:n ~cols:width in
  Array.iteri
    (fun i x ->
      let row = basis x in
      assert (Array.length row = width);
      Array.iteri (fun j v -> Matrix.set design i j v) row)
    xs;
  let coefficients = Matrix.solve_least_squares design ys in
  let predicted = Matrix.mul_vec design coefficients in
  let ss_res = ref 0. in
  Array.iteri (fun i y -> ss_res := !ss_res +. (((y -. predicted.(i)) ** 2.))) ys;
  let mean_y = Array.fold_left ( +. ) 0. ys /. float_of_int n in
  let ss_tot = Array.fold_left (fun acc y -> acc +. ((y -. mean_y) ** 2.)) 0. ys in
  let r_squared = if ss_tot = 0. then 1. else 1. -. (!ss_res /. ss_tot) in
  { coefficients; residual = sqrt (!ss_res /. float_of_int n); r_squared }

let polyfit ~degree ~xs ~ys =
  assert (degree >= 0);
  let basis x = Array.init (degree + 1) (fun j -> x ** float_of_int j) in
  fit_basis ~basis ~xs ~ys

let polyfit_through_origin ~degree ~xs ~ys =
  assert (degree >= 1);
  let basis x = Array.init degree (fun j -> x ** float_of_int (j + 1)) in
  fit_basis ~basis ~xs ~ys

let fit_affine_in ~h ~xs ~ys =
  let basis x = [| 1.; h x |] in
  fit_basis ~basis ~xs ~ys

let eval_poly coeffs x =
  let acc = ref 0. in
  for i = Array.length coeffs - 1 downto 0 do
    acc := (!acc *. x) +. coeffs.(i)
  done;
  !acc
