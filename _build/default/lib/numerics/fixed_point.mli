(** Generic fixed-point iteration drivers.

    Both loops of the paper's Algorithm 1 are fixed-point iterations: the
    inner loop alternates the interval updates (Eq. 16/23) with the scale
    update (Eq. 17/24), and the outer loop re-estimates the expected failure
    counts [mu_i] until they stop moving.  This module factors the shared
    machinery: iteration budget, convergence criterion, optional damping,
    and iteration-count reporting (the paper reports 7–15 outer and 30–40
    single-level iterations). *)

type 'a result = {
  value : 'a;
  iterations : int;
  converged : bool;
}

exception Diverged of string
(** Raised by [~on_failure:`Raise] drivers when the budget is exhausted. *)

val iterate :
  ?max_iter:int ->
  ?on_failure:[ `Raise | `Return_last ] ->
  step:('a -> 'a) ->
  distance:('a -> 'a -> float) ->
  tol:float ->
  'a ->
  'a result
(** [iterate ~step ~distance ~tol x0] repeats [x <- step x] until
    [distance x (step x) <= tol].  Default [max_iter] is 10,000.
    [`Return_last] (default) reports [converged = false] instead of
    raising. *)

val iterate_scalar :
  ?max_iter:int ->
  ?damping:float ->
  step:(float -> float) ->
  tol:float ->
  float ->
  float result
(** Scalar convenience wrapper.  [damping] in [(0, 1\]] (default 1) blends
    [x' = (1 - damping) * x + damping * step x], which tames oscillating
    iterations. *)

val max_abs_diff : float array -> float array -> float
(** Pointwise infinity-norm distance; the convergence test of Algorithm 1
    ([max_i |mu_i' - mu_i| <= delta]). *)
