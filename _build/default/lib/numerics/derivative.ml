let step_for ?h x =
  match h with Some h -> h | None -> 1e-6 *. (1. +. Float.abs x)

let central ?h ~f x =
  let h = step_for ?h x in
  (f (x +. h) -. f (x -. h)) /. (2. *. h)

let richardson ?h ~f x =
  let h = step_for ?h x in
  let d1 = (f (x +. h) -. f (x -. h)) /. (2. *. h) in
  let h2 = h /. 2. in
  let d2 = (f (x +. h2) -. f (x -. h2)) /. (2. *. h2) in
  ((4. *. d2) -. d1) /. 3.

let second ?h ~f x =
  let h = match h with Some h -> h | None -> 1e-4 *. (1. +. Float.abs x) in
  (f (x +. h) -. (2. *. f x) +. f (x -. h)) /. (h *. h)
