(** Special functions.

    Currently the gamma function family, needed to calibrate Weibull
    failure inter-arrival laws to a target mean rate
    ([mean = scale * Gamma (1 + 1/shape)]). *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0], via the Lanczos
    approximation (|error| < 1e-10 over the usual range). *)

val gamma : float -> float
(** [gamma x] for [x > 0].  Overflow-prone beyond ~170; use
    {!log_gamma} there. *)

val factorial : int -> float
(** [factorial n] as a float ([gamma (n + 1)] with exact small cases).
    Requires [n >= 0]. *)
