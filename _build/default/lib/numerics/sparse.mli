(** Sparse matrices in compressed sparse row (CSR) form.

    Backing store for the conjugate-gradient solver ({!Cg}) used by the
    resilience examples — large stencil systems (2-D Poisson) are far too
    big for the dense {!Matrix} type. *)

type t

val of_triplets : rows:int -> cols:int -> (int * int * float) list -> t
(** [of_triplets ~rows ~cols entries] builds the matrix from coordinate
    triplets [(i, j, v)].  Duplicate positions are summed; explicit zeros
    are dropped.  @raise Invalid_argument on out-of-range indices. *)

val rows : t -> int
val cols : t -> int
val nnz : t -> int
(** Stored entries. *)

val get : t -> int -> int -> float
(** [get t i j]; zero for absent entries.  O(log nnz_row). *)

val mul_vec : t -> float array -> float array
(** Sparse matrix–vector product.  @raise Invalid_argument on size
    mismatch. *)

val transpose : t -> t

val is_symmetric : ?tol:float -> t -> bool
(** Entry-wise symmetry check (absolute tolerance, default 1e-12). *)

val poisson_2d : n:int -> t
(** The standard 5-point Laplacian on an [n x n] interior grid (Dirichlet
    boundary): SPD, [n^2] unknowns, 4 on the diagonal, -1 on the four
    neighbour couplings.  The classic CG test problem. *)

val row_iter : t -> int -> (int -> float -> unit) -> unit
(** [row_iter t i f] calls [f j v] for every stored entry of row [i]. *)
