let uniform rng ~lo ~hi = Rng.float_range rng lo hi

let exponential rng ~rate =
  assert (rate > 0.);
  (* Guard against log 0: Rng.float is in [0, 1), so 1 - u is in (0, 1]. *)
  let u = 1. -. Rng.float rng in
  -.log u /. rate

let weibull rng ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let u = 1. -. Rng.float rng in
  scale *. ((-.log u) ** (1. /. shape))

let normal rng ~mean ~std =
  let u1 = 1. -. Rng.float rng in
  let u2 = Rng.float rng in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (std *. z)

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~std:sigma)

let poisson rng ~mean =
  assert (mean >= 0.);
  if mean = 0. then 0
  else if mean > 500. then
    (* Normal approximation with continuity correction. *)
    let z = normal rng ~mean ~std:(sqrt mean) in
    int_of_float (Float.max 0. (Float.round z))
  else begin
    let limit = exp (-.mean) in
    let rec loop k prod =
      let prod = prod *. Rng.float rng in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.
  end

let jittered rng ~ratio v =
  assert (ratio >= 0. && ratio < 1.);
  v *. (1. +. Rng.float_range rng (-.ratio) ratio)

let exponential_pdf ~rate x = if x < 0. then 0. else rate *. exp (-.rate *. x)
let exponential_cdf ~rate x = if x < 0. then 0. else 1. -. exp (-.rate *. x)

let log_factorial k =
  let rec loop i acc = if i > k then acc else loop (i + 1) (acc +. log (float_of_int i)) in
  loop 2 0.

let poisson_pmf ~mean k =
  if k < 0 then 0.
  else if mean = 0. then if k = 0 then 1. else 0.
  else exp ((float_of_int k *. log mean) -. mean -. log_factorial k)
