(** Sampling from, and densities of, the probability distributions used by
    the checkpoint model: failure inter-arrival times are exponential
    (paper Section IV-A), checkpoint-cost jitter is uniform, and Weibull /
    log-normal variants are provided for sensitivity studies. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** [uniform rng ~lo ~hi] samples uniformly from [\[lo, hi)]. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] samples an exponential variate with rate
    [rate] (mean [1 /. rate]).  Requires [rate > 0]. *)

val weibull : Rng.t -> shape:float -> scale:float -> float
(** [weibull rng ~shape ~scale] samples a Weibull variate.  [shape = 1]
    degenerates to the exponential with mean [scale]. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** [normal rng ~mean ~std] samples a Gaussian via Box–Muller. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [lognormal rng ~mu ~sigma] is [exp] of a Gaussian with the given
    parameters. *)

val poisson : Rng.t -> mean:float -> int
(** [poisson rng ~mean] samples a Poisson count.  Uses Knuth's product
    method for small means and a normal approximation beyond 500. *)

val jittered : Rng.t -> ratio:float -> float -> float
(** [jittered rng ~ratio v] perturbs [v] by a uniform relative error in
    [\[-ratio, +ratio\]]; the paper applies up to 30 % jitter to
    checkpoint/restart overheads. *)

val exponential_pdf : rate:float -> float -> float
(** Density of the exponential distribution ([0.] for negative inputs). *)

val exponential_cdf : rate:float -> float -> float
(** Cumulative distribution of the exponential. *)

val poisson_pmf : mean:float -> int -> float
(** [poisson_pmf ~mean k] is the probability of observing exactly [k]
    events; computed in log space to stay stable for large [mean]. *)
