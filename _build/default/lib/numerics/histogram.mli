(** Fixed-width histograms, used to sanity-check sampled distributions
    (e.g. that failure inter-arrival times are exponential) and to report
    run-length spreads in EXPERIMENTS.md. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal bins;
    samples outside the range are counted in overflow/underflow. *)

val add : t -> float -> unit
val count : t -> int
(** Total samples added, including out-of-range ones. *)

val bin_count : t -> int -> int
(** [bin_count t i] is the number of samples in bin [i]. *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** Bounds [(lo_i, hi_i)] of bin [i]. *)

val density : t -> int -> float
(** [density t i] is the normalized empirical density of bin [i]
    (fraction of in-range samples divided by bin width). *)

val chi_squared_uniform : t -> float
(** Chi-squared statistic of the in-range counts against a uniform
    expectation — a cheap goodness-of-fit helper for RNG tests. *)
