(** Conjugate gradient for symmetric positive-definite systems.

    Exposed as an explicit iteration state so applications can checkpoint
    mid-solve: serialize the {!state}, crash, restore it, and the
    iteration continues bit-for-bit — the property the FTI executor
    example exercises. *)

type state = {
  x : float array;  (** current iterate *)
  r : float array;  (** residual [b - A x] *)
  p : float array;  (** search direction *)
  rs : float;  (** [r . r] *)
  iteration : int;
}

val init : a:Sparse.t -> b:float array -> ?x0:float array -> unit -> state
(** Starting state ([x0] defaults to zero).
    @raise Invalid_argument on shape mismatches. *)

val step : a:Sparse.t -> state -> state
(** One CG iteration (pure — the input state is not mutated). *)

val residual_norm : state -> float
(** Euclidean norm of the current residual. *)

val converged : ?tol:float -> state -> bool
(** [residual_norm <= tol] (default 1e-10). *)

val solve :
  ?tol:float -> ?max_iter:int -> a:Sparse.t -> b:float array -> unit -> state
(** Iterate until convergence or [max_iter] (default [4 * rows]). *)

val serialize : state -> Bytes.t
val deserialize : Bytes.t -> state
(** @raise Invalid_argument on malformed payloads. *)

val equal : state -> state -> bool
(** Bit-for-bit comparison. *)
