(* Lanczos approximation with g = 7, n = 9 coefficients. *)

let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  assert (x > 0.);
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let gamma x = exp (log_gamma x)

let factorial n =
  assert (n >= 0);
  if n < 2 then 1.
  else begin
    let acc = ref 1. in
    for i = 2 to n do
      acc := !acc *. float_of_int i
    done;
    !acc
  end
