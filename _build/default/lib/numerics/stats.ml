type summary = {
  n : int;
  mean : float;
  variance : float;
  std : float;
  min : float;
  max : float;
}

let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let min xs =
  assert (Array.length xs > 0);
  Array.fold_left Float.min xs.(0) xs

let max xs =
  assert (Array.length xs > 0);
  Array.fold_left Float.max xs.(0) xs

let summarize xs =
  { n = Array.length xs; mean = mean xs; variance = variance xs; std = std xs;
    min = min xs; max = max xs }

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  assert (Array.length xs > 0 && p >= 0. && p <= 1.);
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let i = int_of_float (Float.of_int (int_of_float pos)) in
    let frac = pos -. float_of_int i in
    if i >= n - 1 then ys.(n - 1) else ys.(i) +. (frac *. (ys.(i + 1) -. ys.(i)))
  end

let median xs = percentile xs 0.5

let confidence95 xs =
  let s = summarize xs in
  let half = 1.96 *. s.std /. sqrt (float_of_int s.n) in
  (s.mean -. half, s.mean +. half)

let relative_error ~expected v =
  assert (expected <> 0.);
  Float.abs (v -. expected) /. Float.abs expected

module Online = struct
  type t = { mutable count : int; mutable mean : float; mutable m2 : float }

  let create () = { count = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.count
  let mean t = t.mean
  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
  let std t = sqrt (variance t)
end
