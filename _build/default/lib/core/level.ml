type t = { name : string; ckpt : Overhead.t; restart : Overhead.t }

let v ?(name = "level") ?restart ckpt =
  let restart = Option.value restart ~default:ckpt in
  { name; ckpt; restart }

(* Checkpoint writes use the Table II least-squares laws.  Restart reads
   are charged at the cost characterized at the validation scale (1,024
   cores): recovery reads do not pay the metadata-congestion penalty that
   makes PFS *writes* grow with the scale, and a scale-growing restart
   cost would make the 1e6-core configurations unable to finish at all
   (lambda_total * R_4(1e6) ~ 0.98 failure per recovery). *)
let fti_fusion =
  [| v ~name:"local" (Overhead.constant 0.866);
     v ~name:"partner" (Overhead.constant 2.586);
     v ~name:"rs-encoding" (Overhead.constant 3.886);
     v ~name:"pfs"
       ~restart:(Overhead.constant (5.5 +. (0.0212 *. 1024.)))
       (Overhead.linear ~eps:5.5 ~alpha:0.0212) |]

let constant_pfs_case =
  [| v ~name:"local" (Overhead.constant 50.);
     v ~name:"partner" (Overhead.constant 100.);
     v ~name:"rs-encoding" (Overhead.constant 200.);
     v ~name:"pfs" (Overhead.constant 2000.) |]

let pp ppf t = Format.fprintf ppf "%s: C=%a R=%a" t.name Overhead.pp t.ckpt Overhead.pp t.restart
