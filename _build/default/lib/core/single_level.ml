module Roots = Ckpt_numerics.Roots

type params = {
  te : float;
  speedup : Speedup.t;
  level : Level.t;
  alloc : float;
  mu : Scale_fn.t;
}

type solution = {
  x : float;
  n : float;
  wall_clock : float;
  iterations : int;
  converged : bool;
}

let expected_wall_clock p ~x ~n =
  assert (x >= 1. && n > 0.);
  let g = Speedup.eval p.speedup n in
  let c = Overhead.cost p.level.Level.ckpt n in
  let r = Overhead.cost p.level.Level.restart n in
  let mu = p.mu.Scale_fn.f n in
  (p.te /. g)
  +. (c *. (x -. 1.))
  +. (mu *. ((p.te /. (2. *. x *. g)) +. r +. p.alloc))

let d_dx p ~x ~n =
  let g = Speedup.eval p.speedup n in
  let c = Overhead.cost p.level.Level.ckpt n in
  let mu = p.mu.Scale_fn.f n in
  c -. (mu *. p.te /. (2. *. g *. x *. x))

let d_dn p ~x ~n =
  let g = Speedup.eval p.speedup n in
  let g' = Speedup.eval' p.speedup n in
  let c' = Overhead.cost' p.level.Level.ckpt n in
  let r = Overhead.cost p.level.Level.restart n in
  let r' = Overhead.cost' p.level.Level.restart n in
  let mu = p.mu.Scale_fn.f n in
  let mu' = p.mu.Scale_fn.f' n in
  (-.p.te *. g' /. (g *. g))
  +. (c' *. (x -. 1.))
  +. (mu' *. ((p.te /. (2. *. x *. g)) +. r +. p.alloc))
  +. (mu *. ((-.p.te *. g' /. (2. *. x *. g *. g)) +. r'))

let x_update p ~n =
  let g = Speedup.eval p.speedup n in
  let c = Overhead.cost p.level.Level.ckpt n in
  let mu = p.mu.Scale_fn.f n in
  if c <= 0. then 1.
  else Float.max 1. (sqrt (mu *. p.te /. (2. *. c *. g)))

let optimal_x_closed_form ~te ~kappa ~b ~eps0 =
  assert (te > 0. && kappa > 0. && b > 0. && eps0 > 0.);
  sqrt (b *. te /. (2. *. kappa *. eps0))

let optimal_n_closed_form ~te ~kappa ~b ~eta0 ~alloc =
  assert (te > 0. && kappa > 0. && b > 0. && eta0 +. alloc > 0.);
  sqrt (te /. (kappa *. b *. (eta0 +. alloc)))

(* Solve d_dn = 0 over [1, n_hi] for a fixed x.  The objective is convex in
   N on the ascending side of the speedup curve, so the derivative is
   monotone there: no interior sign change means the optimum sits on a
   boundary. *)
let solve_scale p ~x ~n_hi =
  let f n = d_dn p ~x ~n in
  if f n_hi <= 0. then n_hi
  else if f 1. >= 0. then 1.
  else (Roots.bisect_integer ~f ~lo:1. ~hi:n_hi ()).Roots.root

let optimize ?(x0 = 100_000.) ?(tol = 1e-6) ?(max_iter = 10_000) ?(n_max = 1e9) p =
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let rec loop x n iter =
    if iter >= max_iter then
      { x; n; wall_clock = expected_wall_clock p ~x ~n; iterations = iter; converged = false }
    else begin
      let x' = x_update p ~n in
      let n' = solve_scale p ~x:x' ~n_hi in
      if Float.abs (x' -. x) <= tol && Float.abs (n' -. n) <= 0.5 then
        { x = x'; n = n';
          wall_clock = expected_wall_clock p ~x:x' ~n:n';
          iterations = iter + 1; converged = true }
      else loop x' n' (iter + 1)
    end
  in
  loop x0 n_hi 0
