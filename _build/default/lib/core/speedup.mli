(** Application speedup curves [g(N)].

    The parallel execution time of an application with single-core
    productive time [T_e] on [N] cores is [f(T_e, N) = T_e / g(N)] (paper
    Section II).  The optimizer only needs [g], its derivative and — for
    nonlinear curves — the ideal scale [N_star] where [g] peaks, because
    the optimal scale can never exceed it (paper Section III-C.2). *)

(** Constructor form, kept for introspection and serialization. *)
type form =
  | Linear of { kappa : float }
  | Quadratic of { kappa : float; n_star : float }
  | Amdahl of { serial_fraction : float; peak : float }
  | Gustafson of { serial_fraction : float; peak : float }
  | Custom

type t = {
  name : string;
  form : form;
  law : Scale_fn.t;  (** [g] and [g'] *)
  n_ideal : float option;
      (** the scale [N_star] maximizing [g], when the curve has one *)
}

val linear : kappa:float -> t
(** [g(N) = kappa * N] — ideal strong scaling (no peak). *)

val quadratic : kappa:float -> n_star:float -> t
(** Paper Eq. (12): [g(N) = -kappa/(2 n_star) N^2 + kappa N]; passes
    through the origin with slope [kappa] and peaks at [n_star] with
    [g(n_star) = kappa * n_star / 2].  Requires both positive. *)

val amdahl : serial_fraction:float -> peak:float -> t
(** Amdahl's law [g(N) = 1 / (s + (1 - s)/N)] truncated at [peak] (the law
    itself never decreases, so the search bound must be supplied).
    Requires [0 <= serial_fraction < 1]. *)

val gustafson : serial_fraction:float -> peak:float -> t
(** Gustafson–Barsis scaled speedup [g(N) = s + (1 - s) N], bounded by
    [peak] for the optimizer. *)

val of_quadratic_fit : kappa:float -> quad_coefficient:float -> t
(** Builds the curve from the coefficients of a least-squares fit
    [g(N) ~ kappa N + quad_coefficient N^2] (see
    {!Ckpt_numerics.Least_squares.polyfit_through_origin}); requires
    [quad_coefficient < 0] so that a peak exists. *)

val eval : t -> float -> float
(** [eval t n] is [g(N)].  Requires [n > 0]. *)

val eval' : t -> float -> float

val productive_time : t -> te:float -> n:float -> float
(** [productive_time t ~te ~n] is [f(T_e, N) = te / g(n)]. *)

val search_upper_bound : t -> default:float -> float
(** The upper end of the scale-search interval: [n_ideal] when the curve
    has a peak, [default] otherwise. *)

val of_form : form -> t
(** Rebuild a speedup from its form.  @raise Invalid_argument on
    [Custom]. *)

val custom : name:string -> law:Scale_fn.t -> n_ideal:float option -> t
(** A speedup from raw value/derivative functions ([form = Custom];
    not serializable). *)

val pp : Format.formatter -> t -> unit
