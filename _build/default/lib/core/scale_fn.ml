module Derivative = Ckpt_numerics.Derivative

type t = { f : float -> float; f' : float -> float }

let const c = { f = (fun _ -> c); f' = (fun _ -> 0.) }

let linear ?(intercept = 0.) ~slope () =
  { f = (fun n -> intercept +. (slope *. n)); f' = (fun _ -> slope) }

let scale c t = { f = (fun n -> c *. t.f n); f' = (fun n -> c *. t.f' n) }

let add a b = { f = (fun n -> a.f n +. b.f n); f' = (fun n -> a.f' n +. b.f' n) }

let of_fun ?h f = { f; f' = (fun x -> Derivative.central ?h ~f x) }

let check_derivative ?(at = [ 1.; 10.; 1e3; 1e5 ]) ?(tol = 1e-4) t =
  List.for_all
    (fun x ->
      let numeric = Derivative.richardson ~f:t.f x in
      let analytic = t.f' x in
      let scale = Float.max 1. (Float.abs analytic) in
      Float.abs (numeric -. analytic) /. scale <= tol)
    at
