lib/core/sensitivity.mli: Format Optimizer
