lib/core/multilevel.mli: Level Scale_fn Speedup
