lib/core/codec.ml: Array Ckpt_failures Ckpt_json Level List Multilevel Optimizer Option Overhead Printf Result Speedup
