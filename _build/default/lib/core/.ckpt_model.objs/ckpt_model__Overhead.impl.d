lib/core/overhead.ml: Array Ckpt_numerics Float Format Scale_fn
