lib/core/scale_fn.ml: Ckpt_numerics Float List
