lib/core/optimizer.mli: Ckpt_failures Format Level Multilevel Speedup
