lib/core/level_selection.ml: Array Ckpt_failures Format Int List Optimizer String
