lib/core/scale_fn.mli:
