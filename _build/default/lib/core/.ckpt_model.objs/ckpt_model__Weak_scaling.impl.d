lib/core/weak_scaling.ml: List Optimizer Speedup
