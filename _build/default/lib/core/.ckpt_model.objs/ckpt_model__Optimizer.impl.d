lib/core/optimizer.ml: Array Ckpt_failures Ckpt_numerics Float Format Level Multilevel Option Printf Scale_fn Speedup String
