lib/core/speedup.mli: Format Scale_fn
