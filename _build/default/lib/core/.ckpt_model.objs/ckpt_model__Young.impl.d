lib/core/young.ml: Float
