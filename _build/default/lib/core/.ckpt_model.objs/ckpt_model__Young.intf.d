lib/core/young.mli:
