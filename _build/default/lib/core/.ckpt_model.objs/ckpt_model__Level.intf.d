lib/core/level.mli: Format Overhead
