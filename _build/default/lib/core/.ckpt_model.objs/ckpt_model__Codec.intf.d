lib/core/codec.mli: Ckpt_json Optimizer Overhead Speedup
