lib/core/sensitivity.ml: Array Ckpt_failures Format Level List Optimizer Overhead Printf Speedup
