lib/core/self_consistent.mli:
