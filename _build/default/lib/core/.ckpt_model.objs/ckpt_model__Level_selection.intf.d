lib/core/level_selection.mli: Ckpt_failures Format Optimizer
