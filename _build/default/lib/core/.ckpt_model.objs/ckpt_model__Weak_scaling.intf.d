lib/core/weak_scaling.mli: Ckpt_failures Level Optimizer Speedup
