lib/core/level.ml: Format Option Overhead
