lib/core/overhead.mli: Format Scale_fn
