lib/core/markov.ml: Array Ckpt_failures Ckpt_numerics Float Int Level List Overhead Speedup
