lib/core/self_consistent.ml: Ckpt_numerics List
