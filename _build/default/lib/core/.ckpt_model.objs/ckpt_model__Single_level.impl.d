lib/core/single_level.ml: Ckpt_numerics Float Level Overhead Scale_fn Speedup
