lib/core/jin.ml: Float Option Single_level Speedup
