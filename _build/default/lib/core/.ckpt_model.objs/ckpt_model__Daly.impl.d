lib/core/daly.ml: Float
