lib/core/multilevel.ml: Array Ckpt_numerics Float Level Option Overhead Scale_fn Speedup
