lib/core/jin.mli: Single_level
