lib/core/daly.mli:
