lib/core/single_level.mli: Level Scale_fn Speedup
