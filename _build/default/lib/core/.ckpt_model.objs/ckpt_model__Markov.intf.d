lib/core/markov.mli: Ckpt_failures Level Speedup
