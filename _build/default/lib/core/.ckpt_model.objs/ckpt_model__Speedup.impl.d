lib/core/speedup.ml: Format Printf Scale_fn
