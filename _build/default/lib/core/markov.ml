module Failure_spec = Ckpt_failures.Failure_spec
module Roots = Ckpt_numerics.Roots

type cadence = { periods : int array }

let cadence periods =
  if Array.length periods = 0 then invalid_arg "Markov.cadence: empty";
  Array.iteri
    (fun i v ->
      if v < 1 then invalid_arg "Markov.cadence: period < 1";
      if i > 0 && v < periods.(i - 1) then
        invalid_arg "Markov.cadence: periods must be non-decreasing")
    periods;
  { periods }

let level_of_segment c k =
  assert (k >= 1);
  let best = ref 1 in
  Array.iteri (fun i v -> if k mod v = 0 then best := i + 2) c.periods;
  !best

type params = {
  te : float;
  speedup : Speedup.t;
  levels : Level.t array;
  alloc : float;
  spec : Failure_spec.t;
}

type plan = {
  segment_length : float;
  cadence : cadence;
  wall_clock : float;
  xs : float array;
}

let check params c =
  if Array.length c.periods <> Array.length params.levels - 1 then
    invalid_arg "Markov: cadence arity must be levels - 1"

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a * b / gcd a b

(* Mean checkpoint cost per segment over one full cadence cycle. *)
let mean_ckpt_cost params c ~n =
  let cycle = Int.max 1 (Array.fold_left lcm 1 c.periods) in
  let total = ref 0. in
  for k = 1 to cycle do
    let lvl = level_of_segment c k in
    total := !total +. Overhead.cost params.levels.(lvl - 1).Level.ckpt n
  done;
  !total /. float_of_int cycle

let expected_wall_clock params ~n ~segment_length c =
  check params c;
  assert (segment_length > 0. && n > 0.);
  let productive = Speedup.productive_time params.speedup ~te:params.te ~n in
  let segments = Float.max 1. (productive /. segment_length) in
  let d = segment_length +. mean_ckpt_cost params c ~n in
  let nlevels = Array.length params.levels in
  let lambda_total = Failure_spec.total_rate_per_second params.spec ~scale:n in
  if lambda_total <= 0. then (segments *. d)
  else begin
    (* Expected rollback distance (in segments) and recovery cost,
       averaged over the failure-level mix.  A level-i failure must reach
       back to the newest checkpoint of level >= i: expected (v_i + 1)/2
       segments where v_i is the coarsest period at or above i. *)
    let b_bar = ref 0. and r_bar = ref 0. in
    for i = 1 to nlevels do
      let li = Failure_spec.rate_per_second params.spec ~level:i ~scale:n in
      let share = li /. lambda_total in
      let period = if i = 1 then 1 else c.periods.(i - 2) in
      b_bar := !b_bar +. (share *. ((float_of_int period +. 1.) /. 2.));
      r_bar := !r_bar +. (share *. Overhead.cost params.levels.(i - 1).Level.restart n)
    done;
    let per_failure = params.alloc +. !r_bar +. (!b_bar *. d) in
    let denom = 1. -. (lambda_total *. per_failure) in
    if denom <= 0. then infinity else segments *. d /. denom
  end

let default_periods = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let optimize ?(candidate_periods = default_periods) params ~n =
  let nlevels = Array.length params.levels in
  (* Enumerate non-decreasing tuples of periods for levels 2..L. *)
  let rec tuples k min_v =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun v -> List.map (fun rest -> v :: rest) (tuples (k - 1) v))
        (List.filter (fun v -> v >= min_v) candidate_periods)
  in
  let candidates = tuples (nlevels - 1) 1 in
  let productive = Speedup.productive_time params.speedup ~te:params.te ~n in
  let best = ref None in
  List.iter
    (fun periods ->
      let c = cadence (Array.of_list periods) in
      let objective tau = expected_wall_clock params ~n ~segment_length:tau c in
      (* The objective is infinite wherever the chain diverges, so seed a
         coarse log-grid scan and golden-section only around the best
         finite cell. *)
      let lo = log 1. and hi = log (Float.max 2. productive) in
      let grid_points = 48 in
      let at i = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (grid_points - 1)) in
      let best_i = ref (-1) and best_w = ref infinity in
      for i = 0 to grid_points - 1 do
        let w = objective (exp (at i)) in
        if w < !best_w then begin
          best_w := w;
          best_i := i
        end
      done;
      let tau, wall =
        if !best_i < 0 then (exp hi, infinity)
        else begin
          let glo = at (Int.max 0 (!best_i - 1)) in
          let ghi = at (Int.min (grid_points - 1) (!best_i + 1)) in
          let r =
            Roots.minimize_golden ~tol:1e-4
              ~f:(fun log_tau -> objective (exp log_tau))
              ~lo:glo ~hi:ghi ()
          in
          let tau = exp r.Roots.root in
          (tau, objective tau)
        end
      in
      match !best with
      | Some (_, _, w) when w <= wall -> ()
      | _ -> best := Some (tau, c, wall))
    candidates;
  match !best with
  | None -> assert false
  | Some (segment_length, c, wall_clock) ->
      let plan = { segment_length; cadence = c; wall_clock; xs = [||] } in
      let xs =
        let segments =
          Float.max 1. (productive /. segment_length)
        in
        Array.init nlevels (fun idx ->
            if idx = 0 then Float.max 1. segments
            else Float.max 1. (segments /. float_of_int c.periods.(idx - 1)))
      in
      { plan with xs }

let to_simulator_xs params ~n plan =
  let productive = Speedup.productive_time params.speedup ~te:params.te ~n in
  let segments = Float.max 1. (productive /. plan.segment_length) in
  Array.init (Array.length params.levels) (fun idx ->
      if idx = 0 then Float.max 1. segments
      else Float.max 1. (segments /. float_of_int plan.cadence.periods.(idx - 1)))
