module Failure_spec = Ckpt_failures.Failure_spec

type candidate = { levels_used : int list; plan : Optimizer.plan }

let regroup_rates ~full ~subset =
  let levels = Failure_spec.levels full in
  (match subset with
   | [] -> invalid_arg "Level_selection.regroup_rates: empty subset"
   | _ ->
       if List.sort compare subset <> subset then
         invalid_arg "Level_selection.regroup_rates: subset must be sorted";
       if not (List.mem levels subset) then
         invalid_arg "Level_selection.regroup_rates: the last level is mandatory";
       List.iter
         (fun l ->
           if l < 1 || l > levels then
             invalid_arg "Level_selection.regroup_rates: level out of range")
         subset);
  let rates =
    List.map
      (fun l ->
        let lower =
          List.fold_left (fun acc l' -> if l' < l then Int.max acc l' else acc) 0 subset
        in
        let acc = ref 0. in
        for i = lower + 1 to l do
          acc := !acc +. full.Failure_spec.rates_per_day.(i - 1)
        done;
        !acc)
      subset
  in
  Failure_spec.v ~baseline_scale:full.Failure_spec.baseline_scale (Array.of_list rates)

let subsets_containing_last ~levels =
  assert (levels >= 1);
  (* Enumerate subsets of 1..levels-1 and append the mandatory last. *)
  let rec enum l =
    if l = 0 then [ [] ]
    else begin
      let rest = enum (l - 1) in
      rest @ List.map (fun s -> s @ [ l ]) rest
    end
  in
  List.map (fun s -> s @ [ levels ]) (enum (levels - 1))

let evaluate ?delta ?fixed_n (problem : Optimizer.problem) =
  Optimizer.check_problem problem;
  let nlevels = Array.length problem.Optimizer.levels in
  let candidates =
    List.map
      (fun subset ->
        let levels =
          Array.of_list (List.map (fun l -> problem.Optimizer.levels.(l - 1)) subset)
        in
        let spec = regroup_rates ~full:problem.Optimizer.spec ~subset in
        let sub_problem = { problem with Optimizer.levels; spec } in
        { levels_used = subset; plan = Optimizer.solve ?delta ?fixed_n sub_problem })
      (subsets_containing_last ~levels:nlevels)
  in
  List.sort
    (fun a b -> compare a.plan.Optimizer.wall_clock b.plan.Optimizer.wall_clock)
    candidates

let best ?delta ?fixed_n problem =
  match evaluate ?delta ?fixed_n problem with
  | best :: _ -> best
  | [] -> assert false

let pp_candidate ppf c =
  Format.fprintf ppf "levels {%s}: E(Tw) = %.3f days at N = %.0f"
    (String.concat "," (List.map string_of_int c.levels_used))
    (c.plan.Optimizer.wall_clock /. 86400.)
    c.plan.Optimizer.n
