(** The self-consistent single-level wall-clock form of paper Eq. (6).

    Eliminating [E(Y) = lambda(N) E(T_w)] from Eq. (5) yields a closed
    form in which the failure count is consistent with the wall-clock
    length it produces:

    [E(T_w) = (T_e/(kappa N) + (eps0 + alpha0 N)(x - 1))
              / (1 - lambda (T_e/(2 x kappa N) + eta0 + beta0 N + A))]

    The paper's difficulty analysis (Section III-A) observes that this
    function is {e not} convex in [x] and [N] everywhere — which is why
    Algorithm 1 splits the problem instead of attacking Eq. (6) directly.
    {!second_derivative_x} / {!second_derivative_n} let experiments and
    tests exhibit the sign change numerically. *)

type params = {
  te : float;
  kappa : float;  (** linear speedup slope: [g(N) = kappa N] *)
  eps0 : float;  (** constant checkpoint cost *)
  alpha0 : float;  (** linear checkpoint cost coefficient *)
  eta0 : float;  (** constant recovery cost *)
  beta0 : float;  (** linear recovery cost coefficient *)
  alloc : float;
  lambda : float;  (** failure rate per second (scale-independent here) *)
}

val denominator : params -> x:float -> n:float -> float
(** [1 - lambda (...)]; the model is only meaningful where this is
    positive (otherwise the execution cannot outrun its failures). *)

val wall_clock : params -> x:float -> n:float -> float
(** Eq. (6).  @raise Invalid_argument when the denominator is not
    positive. *)

val second_derivative_x : params -> x:float -> n:float -> float
(** Numerical [d2 E / dx2]. *)

val second_derivative_n : params -> x:float -> n:float -> float
(** Numerical [d2 E / dN2]. *)

val find_nonconvex_region :
  params -> xs:float list -> ns:float list -> (float * float) list
(** Grid points where either second derivative is negative — evidence for
    the paper's claim that Eq. (6) is not jointly convex. *)
