(** The single-level checkpoint model (paper Section III-C).

    Expected wall-clock time with one checkpoint level, [x] checkpoint
    intervals, scale [N] and a fixed expected-failure law [mu(N)]
    (paper Eq. 7 for linear speedup, Eq. 13 for nonlinear):

    [E(T_w) = T_e/g(N) + C(N)(x - 1)
              + mu(N) (T_e/(2 x g(N)) + R(N) + A)]

    This module provides the closed forms of Eq. (10)/(11) for the
    linear-speedup constant-overhead case and the fixed-point + bisection
    optimizer of Eq. (16)/(17) for the general case. *)

type params = {
  te : float;  (** single-core productive time, seconds *)
  speedup : Speedup.t;
  level : Level.t;  (** the only storage level (the PFS) *)
  alloc : float;  (** resource allocation period [A], seconds *)
  mu : Scale_fn.t;  (** expected number of failures during the run, as a
                        function of the scale [N] (paper sets [mu = b N]) *)
}

type solution = {
  x : float;  (** optimal number of checkpoint intervals (>= 1) *)
  n : float;  (** optimal scale *)
  wall_clock : float;  (** [E(T_w)] at the optimum *)
  iterations : int;  (** fixed-point iterations used *)
  converged : bool;
}

val expected_wall_clock : params -> x:float -> n:float -> float
(** Eq. (13).  Requires [x >= 1] and [n > 0]. *)

val d_dx : params -> x:float -> n:float -> float
(** Partial derivative Eq. (14). *)

val d_dn : params -> x:float -> n:float -> float
(** Partial derivative Eq. (15), generalized to scale-dependent overhead
    laws (extra [C'(N) (x-1)] and [mu R'] terms). *)

val x_update : params -> n:float -> float
(** The fixed-point map of Eq. (16): [sqrt (mu N Te / (2 C g))], clamped
    to [>= 1]. *)

val optimal_x_closed_form : te:float -> kappa:float -> b:float -> eps0:float -> float
(** Eq. (10): [sqrt (b Te / (2 kappa eps0))] — linear speedup
    [g = kappa N], [mu = b N], constant checkpoint cost [eps0]. *)

val optimal_n_closed_form :
  te:float -> kappa:float -> b:float -> eta0:float -> alloc:float -> float
(** Eq. (11): [sqrt (Te / (kappa b (eta0 + alloc)))]. *)

val optimize : ?x0:float -> ?tol:float -> ?max_iter:int -> ?n_max:float -> params -> solution
(** Alternates Eq. (16) with a bisection solve of [d_dn = 0] over
    [\[1, N_star\]] (paper Section III-C.2).  [x0] defaults to 100,000 as
    in the paper's numerical study; [n_max] bounds the search when the
    speedup has no peak (default [1e9]).  If no interior root exists the
    scale sticks to the boundary ([N_star], or [1]). *)
