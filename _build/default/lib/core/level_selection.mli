(** Optimal selection of checkpoint levels.

    The paper's predecessor work ([22], IPDPS'14) optimized not only the
    checkpoint intervals but also {e which} levels an application should
    use: a level whose failures are rare and whose overhead is high can be
    worth dropping, letting its failures escalate to the next level up.

    This module searches the subsets of the hierarchy (the last level is
    mandatory — something must be able to recover every failure), regroups
    the per-level failure rates onto the cheapest retained level at or
    above each failure's own level, runs Algorithm 1 on each candidate and
    returns the best plan. *)

type candidate = {
  levels_used : int list;  (** 1-based indices into the full hierarchy *)
  plan : Optimizer.plan;
}

val regroup_rates :
  full:Ckpt_failures.Failure_spec.t -> subset:int list -> Ckpt_failures.Failure_spec.t
(** [regroup_rates ~full ~subset] maps each original level's rate onto the
    smallest retained level >= it.  [subset] must be sorted, non-empty,
    and contain the last level of [full].
    @raise Invalid_argument otherwise. *)

val subsets_containing_last : levels:int -> int list list
(** All 2^(L-1) subsets of [1..levels] that contain [levels], smallest
    first in each subset. *)

val evaluate : ?delta:float -> ?fixed_n:float -> Optimizer.problem -> candidate list
(** Run Algorithm 1 for every admissible subset; candidates are returned
    sorted by predicted wall-clock time, best first. *)

val best : ?delta:float -> ?fixed_n:float -> Optimizer.problem -> candidate
(** The head of {!evaluate}. *)

val pp_candidate : Format.formatter -> candidate -> unit
