(** Parameter sensitivity of the optimized plan.

    Every input of the model is estimated from measurements (speedup fits,
    overhead characterizations, failure logs), so a user should know how
    much the optimum moves when an estimate is off.  This module computes
    elasticities by central differences across re-solves of Algorithm 1:

    [elasticity = d ln output / d ln parameter]

    i.e. the percentage change of the wall-clock (or the optimal scale)
    per percent change of the parameter. *)

type knob = {
  name : string;
  apply : float -> Optimizer.problem;
      (** problem with the parameter multiplied by the given factor;
          [apply 1.] must be the base problem *)
}

type row = {
  name : string;
  wall_clock_elasticity : float;
  scale_elasticity : float;
}

val quadratic_knobs :
  kappa:float -> n_star:float -> Optimizer.problem -> knob list
(** The standard knob set for a problem whose speedup is the Eq. (12)
    quadratic rebuilt from [kappa] and [n_star]: kappa, n_star, the
    allocation period, each level's failure rate, and each level's
    constant checkpoint cost.  The problem's own speedup field is
    ignored (rebuilt from the given parameters). *)

val elasticities : ?rel_step:float -> ?delta:float -> knob list -> row list
(** [elasticities knobs] solves the perturbed problems (multipliers
    [1 -. rel_step] and [1 +. rel_step], default 5 %) with Algorithm 1 at
    threshold [delta] and differences the logs. *)

val pp_row : Format.formatter -> row -> unit
