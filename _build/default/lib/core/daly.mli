(** Daly's higher-order checkpoint interval estimate [4].

    Refines Young's formula for non-negligible checkpoint costs:

    [tau = sqrt (2 c M) * (1 + 1/3 sqrt (c / (2 M)) + 1/9 (c / (2 M))) - c]
    when [c < 2 M], and [tau = M] otherwise.

    Included as an ablation baseline: EXPERIMENTS.md compares Young, Daly
    and the paper's optimizer on the single-level configurations. *)

val interval : ckpt_cost:float -> mtbf:float -> float
(** Optimal productive interval length.  Requires both positive. *)

val interval_count : productive:float -> ckpt_cost:float -> failures:float -> float
(** Count form over a run of [productive] seconds expecting [failures]
    failures ([mtbf = productive / failures]); clamped to [>= 1].
    [failures = 0] yields [1.] (no checkpointing needed). *)
