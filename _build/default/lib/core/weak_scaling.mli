(** Weak-scaling analysis.

    The paper (Section II) notes its model covers the weak-scaling
    scenario through the generic speedup and overhead functions.  This
    module makes that concrete: in weak scaling the workload grows with
    the scale — [T_e(N) = w N] for a per-core workload of [w]
    core-seconds — so the failure-free wall time is [w N / g(N)] and the
    interesting question is how much of the ideal efficiency survives the
    failure and checkpoint overheads as the machine grows.

    Weak-scaling efficiency at scale [N] is [w / E(T_w)(N)]: the one-core
    run of the base problem takes exactly [w] seconds, and a perfectly
    scaling machine would solve the [N]-times-larger problem in the same
    time. *)

type point = {
  n : float;  (** scale (cores) *)
  wall_clock : float;  (** expected wall time of the N-times problem *)
  efficiency : float;  (** [w / wall_clock] *)
  failure_free : float;  (** [w N / g(N)], no checkpoints or failures *)
}

val wall_clock :
  per_core_work:float ->
  speedup:Speedup.t ->
  levels:Level.t array ->
  alloc:float ->
  spec:Ckpt_failures.Failure_spec.t ->
  n:float ->
  Optimizer.plan
(** Algorithm 1 restricted to the fixed scale [n] with the weak-scaled
    workload [per_core_work * n]; intervals are still optimized. *)

val series :
  per_core_work:float ->
  speedup:Speedup.t ->
  levels:Level.t array ->
  alloc:float ->
  spec:Ckpt_failures.Failure_spec.t ->
  scales:float list ->
  point list
(** One {!point} per requested scale. *)
