type outcome = {
  x : float;
  n : float;
  wall_clock : float;
  iterations : int;
  converged : bool;
}

let optimize ?(x0 = 1000.) ?n0 ?(tol = 1e-8) ?(max_iter = 200) ?(damping = 1.)
    (p : Single_level.params) =
  assert (damping > 0. && damping <= 1.);
  let n_hi = Speedup.search_upper_bound p.Single_level.speedup ~default:1e9 in
  let n0 = Option.value n0 ~default:(n_hi /. 2.) in
  let fail x n iter = { x; n; wall_clock = nan; iterations = iter; converged = false } in
  let f1 x n = Single_level.d_dx p ~x ~n in
  let f2 x n = Single_level.d_dn p ~x ~n in
  let rec loop x n iter =
    if iter >= max_iter then fail x n iter
    else if x < 1. || n < 1. || n > 2. *. n_hi || not (Float.is_finite x && Float.is_finite n)
    then fail x n iter
    else begin
      let g1 = f1 x n and g2 = f2 x n in
      let scale_res = Float.abs g1 +. Float.abs g2 in
      if scale_res <= tol then
        { x; n;
          wall_clock = Single_level.expected_wall_clock p ~x ~n;
          iterations = iter; converged = true }
      else begin
        (* Numerical Jacobian of (f1, f2). *)
        let hx = 1e-6 *. (1. +. Float.abs x) in
        let hn = 1e-6 *. (1. +. Float.abs n) in
        let j11 = (f1 (x +. hx) n -. f1 (x -. hx) n) /. (2. *. hx) in
        let j12 = (f1 x (n +. hn) -. f1 x (n -. hn)) /. (2. *. hn) in
        let j21 = (f2 (x +. hx) n -. f2 (x -. hx) n) /. (2. *. hx) in
        let j22 = (f2 x (n +. hn) -. f2 x (n -. hn)) /. (2. *. hn) in
        let det = (j11 *. j22) -. (j12 *. j21) in
        if det = 0. || not (Float.is_finite det) then fail x n iter
        else begin
          let dx = ((g1 *. j22) -. (g2 *. j12)) /. det in
          let dn = ((g2 *. j11) -. (g1 *. j21)) /. det in
          let x' = x -. (damping *. dx) in
          let n' = n -. (damping *. dn) in
          if Float.abs (x' -. x) <= tol *. (1. +. Float.abs x)
             && Float.abs (n' -. n) <= tol *. (1. +. Float.abs n)
          then
            { x = x'; n = n';
              wall_clock = Single_level.expected_wall_clock p ~x:(Float.max 1. x') ~n:(Float.max 1. n');
              iterations = iter + 1; converged = true }
          else loop x' n' (iter + 1)
        end
      end
    end
  in
  loop x0 n0 0
