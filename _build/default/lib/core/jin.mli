(** Jin et al.-style optimizer [23]: simultaneous interval/scale
    optimization of the {e single-level} model by Newton's method.

    The paper's critique of this approach (Section V) is that Newton
    iteration on the first-order conditions is used without a convexity
    proof, so it may converge to a non-optimum or diverge for bad starting
    points.  We implement it faithfully enough to exhibit both behaviours:
    a damped 2-D Newton iteration on

    [dE/dx = 0,  dE/dN = 0]

    of {!Single_level}, with a numerically evaluated Jacobian.  Tests show
    it agrees with the bisection optimizer from good starting points and
    can fail from poor ones — the ablation recorded in EXPERIMENTS.md. *)

type outcome = {
  x : float;
  n : float;
  wall_clock : float;
  iterations : int;
  converged : bool;
}

val optimize :
  ?x0:float ->
  ?n0:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?damping:float ->
  Single_level.params ->
  outcome
(** Newton iteration from [(x0, n0)] (defaults: [x0 = 1000],
    [n0 = N_star / 2]).  [damping] in [(0, 1\]] scales each Newton step.
    Returns [converged = false] instead of raising when the iteration
    leaves the feasible region or stalls. *)
