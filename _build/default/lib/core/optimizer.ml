module Failure_spec = Ckpt_failures.Failure_spec

type problem = {
  te : float;
  speedup : Speedup.t;
  levels : Level.t array;
  alloc : float;
  spec : Failure_spec.t;
}

type plan = {
  xs : float array;
  n : float;
  wall_clock : float;
  mus : float array;
  breakdown : Multilevel.breakdown;
  efficiency : float;
  outer_iterations : int;
  inner_iterations : int;
  converged : bool;
}

let check_problem p =
  if Array.length p.levels = 0 then invalid_arg "Optimizer: no levels";
  if Failure_spec.levels p.spec <> Array.length p.levels then
    invalid_arg "Optimizer: failure spec level count differs from hierarchy";
  if p.te <= 0. then invalid_arg "Optimizer: non-positive productive time"

(* mu_i(N) = lambda_i(N) * wall_clock_estimate; lambda is linear in N, so
   mu_i is linear with slope lambda'_i * estimate. *)
let mus_for p ~estimate =
  Array.init (Array.length p.levels) (fun idx ->
      let slope = Failure_spec.rate_per_second' p.spec ~level:(idx + 1) in
      Scale_fn.linear ~slope:(slope *. estimate) ())

let multilevel_params p ~estimate =
  { Multilevel.te = p.te;
    speedup = p.speedup;
    levels = p.levels;
    alloc = p.alloc;
    mus = mus_for p ~estimate }

let mu_values p ~estimate ~n =
  Array.init (Array.length p.levels) (fun idx ->
      Failure_spec.rate_per_second p.spec ~level:(idx + 1) ~scale:n *. estimate)

let finish p ~(sol : Multilevel.solution) ~estimate ~outer ~inner ~converged =
  let params = multilevel_params p ~estimate in
  let breakdown = Multilevel.breakdown params ~xs:sol.Multilevel.xs ~n:sol.Multilevel.n in
  { xs = sol.Multilevel.xs;
    n = sol.Multilevel.n;
    wall_clock = sol.Multilevel.wall_clock;
    mus = mu_values p ~estimate ~n:sol.Multilevel.n;
    breakdown;
    efficiency = p.te /. sol.Multilevel.wall_clock /. sol.Multilevel.n;
    outer_iterations = outer;
    inner_iterations = inner;
    converged }

(* The plan reported when the failure burden exceeds what any checkpoint
   schedule can absorb (paper Section III-D discusses this divergence for
   "extremely high" failure rates): the expected wall clock is unbounded. *)
let divergent_plan p ~n ~outer ~inner =
  { xs = Array.make (Array.length p.levels) 1.;
    n;
    wall_clock = infinity;
    mus = Array.make (Array.length p.levels) infinity;
    breakdown =
      { Multilevel.productive = Speedup.productive_time p.speedup ~te:p.te ~n;
        checkpoint = 0.; restart = infinity; allocation = 0.; rollback = infinity };
    efficiency = 0.;
    outer_iterations = outer;
    inner_iterations = inner;
    converged = false }

let solve ?(delta = 1e-9) ?(max_outer = 1_000) ?fixed_n ?(n_max = 1e9) p =
  check_problem p;
  let n_hi = Speedup.search_upper_bound p.speedup ~default:n_max in
  let n0 = Option.value fixed_n ~default:n_hi in
  (* Line 2 of Algorithm 1: initialize the failure counts from the
     failure-free productive time. *)
  let estimate0 = Speedup.productive_time p.speedup ~te:p.te ~n:n0 in
  let rec outer_loop estimate prev_mus outer inner =
    if not (Float.is_finite estimate) then divergent_plan p ~n:n0 ~outer ~inner
    else begin
    let params = multilevel_params p ~estimate in
    let sol = Multilevel.optimize ?fixed_n ~n_max params in
    let inner = inner + sol.Multilevel.iterations in
    let estimate' = sol.Multilevel.wall_clock in
    if not (Float.is_finite estimate') then
      divergent_plan p ~n:sol.Multilevel.n ~outer:(outer + 1) ~inner
    else begin
    let mus' = mu_values p ~estimate:estimate' ~n:sol.Multilevel.n in
    let drift =
      match prev_mus with
      | None -> infinity
      | Some prev when Array.length prev = Array.length mus' ->
          Ckpt_numerics.Fixed_point.max_abs_diff prev mus'
      | Some _ -> infinity
    in
    if drift <= delta then
      finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner
        ~converged:sol.Multilevel.converged
    else if outer + 1 >= max_outer then
      finish p ~sol ~estimate:estimate' ~outer:(outer + 1) ~inner ~converged:false
    else outer_loop estimate' (Some mus') (outer + 1) inner
    end
    end
  in
  outer_loop estimate0 None 0 0

let single_level_problem p =
  let last = p.levels.(Array.length p.levels - 1) in
  let total =
    Array.fold_left ( +. ) 0. p.spec.Failure_spec.rates_per_day
  in
  { p with
    levels = [| last |];
    spec =
      Failure_spec.v ~baseline_scale:p.spec.Failure_spec.baseline_scale [| total |] }

let ml_opt_scale ?delta p = solve ?delta p

let ml_ori_scale ?delta ?n p =
  let n = Option.value n ~default:(Speedup.search_upper_bound p.speedup ~default:1e9) in
  solve ?delta ~fixed_n:n p

let sl_opt_scale ?delta p = solve ?delta (single_level_problem p)

let sl_ori_scale ?n p =
  let sl = single_level_problem p in
  let n = Option.value n ~default:(Speedup.search_upper_bound sl.speedup ~default:1e9) in
  (* Young's formula (Eq. 25): interval from the productive-time failure
     count; no self-consistent iteration. *)
  let productive = Speedup.productive_time sl.speedup ~te:sl.te ~n in
  let params = multilevel_params sl ~estimate:productive in
  let xs = Multilevel.young_init params ~n in
  let wall_clock = Multilevel.expected_wall_clock params ~xs ~n in
  let sol =
    { Multilevel.xs; n; wall_clock; iterations = 0; converged = true }
  in
  finish sl ~sol ~estimate:productive ~outer:0 ~inner:0 ~converged:true

let pp_plan ppf t =
  let b = t.breakdown in
  Format.fprintf ppf
    "@[<v>xs = [%s]@ N = %.0f@ E(Tw) = %.4g s (%.3f days)@ mus = [%s]@ \
     portions: productive=%.4g ckpt=%.4g restart=%.4g alloc=%.4g rollback=%.4g@ \
     efficiency = %.4f@ iterations: outer=%d inner=%d converged=%b@]"
    (String.concat "; "
       (Array.to_list (Array.map (fun x -> Printf.sprintf "%.1f" x) t.xs)))
    t.n t.wall_clock
    (t.wall_clock /. Failure_spec.seconds_per_day)
    (String.concat "; "
       (Array.to_list (Array.map (fun m -> Printf.sprintf "%.2f" m) t.mus)))
    b.Multilevel.productive b.Multilevel.checkpoint b.Multilevel.restart
    b.Multilevel.allocation b.Multilevel.rollback t.efficiency t.outer_iterations
    t.inner_iterations t.converged
