(** Young's first-order checkpoint interval formula [3].

    Classic single-level result: with checkpoint cost [c] and mean time
    between failures [mtbf], the optimal productive time between
    checkpoints is [tau = sqrt (2 c mtbf)].  The paper uses the
    equivalent count form (its Eq. 25) to initialize the multilevel
    iteration and as the SL(ori-scale) baseline. *)

val interval : ckpt_cost:float -> mtbf:float -> float
(** [interval ~ckpt_cost ~mtbf = sqrt (2 * ckpt_cost * mtbf)].
    Requires both positive. *)

val interval_count : productive:float -> ckpt_cost:float -> failures:float -> float
(** Eq. (25): the number of intervals [x = sqrt (failures * productive /
    (2 * ckpt_cost))] for a run of [productive] seconds expecting
    [failures] failures; clamped to [>= 1].  Equivalent to
    [productive / interval] with [mtbf = productive / failures]. *)
