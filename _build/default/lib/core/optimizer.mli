(** Algorithm 1 of the paper: the complete optimizer.

    The inner convex subproblem ({!Multilevel.optimize}) assumes the
    expected failure counts [mu_i] depend only on the scale; in truth they
    scale with the wall-clock length, which is itself the objective.  The
    outer loop closes that circle: it re-estimates
    [mu_i(N) = lambda_i(N) * E(T_w)] from each new solution and repeats
    until the [mu_i] converge (threshold [delta], paper uses 1e-12).

    The module also packages the paper's four compared solutions
    (Section IV-A): ML/SL crossed with optimized/original scale. *)

type problem = {
  te : float;  (** single-core productive time, seconds *)
  speedup : Speedup.t;
  levels : Level.t array;  (** the full hierarchy, cheapest level first *)
  alloc : float;  (** allocation period [A], seconds *)
  spec : Ckpt_failures.Failure_spec.t;
      (** per-level failure rates; must have one rate per level *)
}

type plan = {
  xs : float array;  (** interval counts per hierarchy level ([1.] = level unused) *)
  n : float;  (** execution scale *)
  wall_clock : float;  (** predicted [E(T_w)], seconds *)
  mus : float array;  (** expected failures per level over the run *)
  breakdown : Multilevel.breakdown;
  efficiency : float;  (** [(te / wall_clock) / n] — paper Section IV-A *)
  outer_iterations : int;
  inner_iterations : int;  (** total inner fixed-point iterations *)
  converged : bool;
}

val check_problem : problem -> unit
(** @raise Invalid_argument when the spec's level count differs from the
    hierarchy's. *)

val solve :
  ?delta:float ->
  ?max_outer:int ->
  ?fixed_n:float ->
  ?n_max:float ->
  problem ->
  plan
(** Run Algorithm 1.  [delta] (default [1e-9]) bounds
    [max_i |mu_i' - mu_i|]; [fixed_n] pins the scale (ori-scale
    baselines); [n_max] bounds the scale search for peakless speedups. *)

val ml_opt_scale : ?delta:float -> problem -> plan
(** This paper's solution: all levels, optimized intervals and scale. *)

val ml_ori_scale : ?delta:float -> ?n:float -> problem -> plan
(** Prior work [22]: all levels, optimized intervals, scale fixed at [n]
    (default: the speedup's ideal scale). *)

val sl_opt_scale : ?delta:float -> problem -> plan
(** Jin-style baseline [23]: PFS level only (absorbing the total failure
    rate), optimized interval and scale. *)

val sl_ori_scale : ?n:float -> problem -> plan
(** Classic Young [3]: PFS level only, interval from Young's formula with
    the productive-time failure count, scale fixed at [n] (default: ideal
    scale).  No outer iteration — Young's formula is not self-consistent. *)

val single_level_problem : problem -> problem
(** The PFS-only collapse used by the SL baselines: keeps the last level
    and aggregates every level's failure rate onto it. *)

val pp_plan : Format.formatter -> plan -> unit
