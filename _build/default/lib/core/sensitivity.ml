module Failure_spec = Ckpt_failures.Failure_spec

type knob = { name : string; apply : float -> Optimizer.problem }

type row = {
  name : string;
  wall_clock_elasticity : float;
  scale_elasticity : float;
}

let quadratic_knobs ~kappa ~n_star (base : Optimizer.problem) =
  let with_speedup ?(kappa = kappa) ?(n_star = n_star) p =
    { p with Optimizer.speedup = Speedup.quadratic ~kappa ~n_star }
  in
  let base = with_speedup base in
  let scale_rate level m =
    let rates = Array.copy base.Optimizer.spec.Failure_spec.rates_per_day in
    rates.(level - 1) <- rates.(level - 1) *. m;
    { base with
      Optimizer.spec =
        Failure_spec.v
          ~baseline_scale:base.Optimizer.spec.Failure_spec.baseline_scale rates }
  in
  let scale_ckpt_cost level m =
    let levels = Array.copy base.Optimizer.levels in
    let l = levels.(level - 1) in
    let ckpt = l.Level.ckpt in
    levels.(level - 1) <-
      { l with
        Level.ckpt =
          Overhead.custom
            ~eps:(ckpt.Overhead.eps *. m)
            ~alpha:(ckpt.Overhead.alpha *. m)
            ~h:ckpt.Overhead.h ~h_name:ckpt.Overhead.h_name };
    { base with Optimizer.levels = levels }
  in
  let nlevels = Array.length base.Optimizer.levels in
  [ { name = "kappa"; apply = (fun m -> with_speedup ~kappa:(kappa *. m) base) };
    { name = "n_star"; apply = (fun m -> with_speedup ~n_star:(n_star *. m) base) };
    { name = "alloc";
      apply = (fun m -> { base with Optimizer.alloc = base.Optimizer.alloc *. m }) } ]
  @ List.init nlevels (fun i ->
        { name = Printf.sprintf "rate_L%d" (i + 1); apply = scale_rate (i + 1) })
  @ List.init nlevels (fun i ->
        { name = Printf.sprintf "ckpt_cost_L%d" (i + 1); apply = scale_ckpt_cost (i + 1) })

let elasticities ?(rel_step = 0.05) ?delta knobs =
  assert (rel_step > 0. && rel_step < 1.);
  List.map
    (fun knob ->
      let solve m = Optimizer.solve ?delta (knob.apply m) in
      let lo = solve (1. -. rel_step) and hi = solve (1. +. rel_step) in
      let dlog = log (1. +. rel_step) -. log (1. -. rel_step) in
      { name = knob.name;
        wall_clock_elasticity =
          (log hi.Optimizer.wall_clock -. log lo.Optimizer.wall_clock) /. dlog;
        scale_elasticity = (log hi.Optimizer.n -. log lo.Optimizer.n) /. dlog })
    knobs

let pp_row ppf r =
  Format.fprintf ppf "%-14s dlnE/dlnp = %+.3f   dlnN*/dlnp = %+.3f" r.name
    r.wall_clock_elasticity r.scale_elasticity
