let interval ~ckpt_cost ~mtbf =
  assert (ckpt_cost > 0. && mtbf > 0.);
  sqrt (2. *. ckpt_cost *. mtbf)

let interval_count ~productive ~ckpt_cost ~failures =
  assert (productive >= 0. && ckpt_cost > 0. && failures >= 0.);
  Float.max 1. (sqrt (failures *. productive /. (2. *. ckpt_cost)))
