(** An SCR-style multilevel checkpoint model (Moody et al., SC'10 — the
    paper's reference [12]).

    SCR schedules checkpoints by {e cadence}: every segment ends with a
    level-1 checkpoint, every [v_i]-th with a level-[i] one (the highest
    due level wins).  Its Markov-chain analysis yields the expected run
    time for a given segment length and cadence; unlike the paper's
    Algorithm 1 it does {e not} optimize the execution scale — which is
    precisely the gap the paper fills (Section V).

    We implement the renewal form of the chain: with total failure rate
    [Lambda], per-failure recovery cost [A + R_i] and an expected rollback
    of [b_i = (v_i + 1)/2] segments for a level-[i] failure,

    [E(T) = K d / (1 - Lambda (A + R_bar + b_bar d))]

    where [d] is the mean segment duration including its checkpoint and
    [K] the segment count — the self-consistent fixed point of the chain.
    Segment length is optimized by golden-section search and the cadence
    by exhaustive search over power-of-two periods. *)

type cadence = {
  periods : int array;
      (** [periods.(i-2)] = every how many segments a level-[i] checkpoint
          is due (levels 2..L); must be >= 1 and non-decreasing *)
}

val cadence : int array -> cadence
(** Validated constructor. *)

val level_of_segment : cadence -> int -> int
(** The level of the checkpoint ending segment [k] (1-based): the highest
    level whose period divides [k]. *)

type params = {
  te : float;
  speedup : Speedup.t;
  levels : Level.t array;
  alloc : float;
  spec : Ckpt_failures.Failure_spec.t;
}

type plan = {
  segment_length : float;  (** productive seconds between checkpoints *)
  cadence : cadence;
  wall_clock : float;  (** expected, seconds *)
  xs : float array;  (** equivalent per-level interval counts, for the
                         simulator *)
}

val expected_wall_clock :
  params -> n:float -> segment_length:float -> cadence -> float
(** The chain's expected run time at scale [n].  Returns [infinity] when
    the failure burden exceeds the renewal bound (the chain diverges). *)

val optimize :
  ?candidate_periods:int list -> params -> n:float -> plan
(** Best segment length (golden section over a wide bracket) and cadence
    (exhaustive over non-decreasing period tuples drawn from
    [candidate_periods], default powers of two up to 4096) at the {e fixed}
    scale [n] — SCR does not choose [n]. *)

val to_simulator_xs : params -> n:float -> plan -> float array
(** Per-level interval counts equivalent to the plan's cadence, usable
    with {!Ckpt_sim} configurations. *)
