let interval ~ckpt_cost ~mtbf =
  assert (ckpt_cost > 0. && mtbf > 0.);
  if ckpt_cost >= 2. *. mtbf then mtbf
  else begin
    let ratio = ckpt_cost /. (2. *. mtbf) in
    (sqrt (2. *. ckpt_cost *. mtbf)
     *. (1. +. (sqrt ratio /. 3.) +. (ratio /. 9.)))
    -. ckpt_cost
  end

let interval_count ~productive ~ckpt_cost ~failures =
  assert (productive >= 0. && ckpt_cost > 0. && failures >= 0.);
  if failures <= 0. || productive <= 0. then 1.
  else begin
    let mtbf = productive /. failures in
    Float.max 1. (productive /. interval ~ckpt_cost ~mtbf)
  end
