(** A checkpoint level: its write (checkpoint) and read (restart) overhead
    laws.  Levels are ordered cheapest-first; level [L] is the PFS. *)

type t = {
  name : string;
  ckpt : Overhead.t;  (** [C_i(N)] *)
  restart : Overhead.t;  (** [R_i(N)] *)
}

val v : ?name:string -> ?restart:Overhead.t -> Overhead.t -> t
(** [v ckpt] builds a level; [restart] defaults to the checkpoint law
    (the paper's evaluations set [R_i = C_i]). *)

val fti_fusion : t array
(** The four FTI levels with the Table II least-squares coefficients:
    [(0.866, 0)], [(2.586, 0)], [(3.886, 0)], [(5.5, 0.0212)] — local,
    partner, RS-encoding, PFS. *)

val constant_pfs_case : t array
(** The Table IV variant: constant overheads 50 / 100 / 200 / 2,000 s. *)

val pp : Format.formatter -> t -> unit
