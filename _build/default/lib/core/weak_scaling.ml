type point = {
  n : float;
  wall_clock : float;
  efficiency : float;
  failure_free : float;
}

let wall_clock ~per_core_work ~speedup ~levels ~alloc ~spec ~n =
  assert (per_core_work > 0. && n >= 1.);
  let problem =
    { Optimizer.te = per_core_work *. n; speedup; levels; alloc; spec }
  in
  Optimizer.solve ~fixed_n:n problem

let series ~per_core_work ~speedup ~levels ~alloc ~spec ~scales =
  List.map
    (fun n ->
      let plan = wall_clock ~per_core_work ~speedup ~levels ~alloc ~spec ~n in
      { n;
        wall_clock = plan.Optimizer.wall_clock;
        efficiency = per_core_work /. plan.Optimizer.wall_clock;
        failure_free = Speedup.productive_time speedup ~te:(per_core_work *. n) ~n })
    scales
