module Derivative = Ckpt_numerics.Derivative

type params = {
  te : float;
  kappa : float;
  eps0 : float;
  alpha0 : float;
  eta0 : float;
  beta0 : float;
  alloc : float;
  lambda : float;
}

let denominator p ~x ~n =
  1.
  -. (p.lambda
      *. ((p.te /. (2. *. x *. p.kappa *. n)) +. p.eta0 +. (p.beta0 *. n) +. p.alloc))

let wall_clock p ~x ~n =
  assert (x >= 1. && n > 0.);
  let d = denominator p ~x ~n in
  if d <= 0. then
    invalid_arg "Self_consistent.wall_clock: failure rate too high (denominator <= 0)";
  ((p.te /. (p.kappa *. n)) +. ((p.eps0 +. (p.alpha0 *. n)) *. (x -. 1.))) /. d

let second_derivative_x p ~x ~n =
  Derivative.second ~f:(fun x -> wall_clock p ~x ~n) x

let second_derivative_n p ~x ~n =
  Derivative.second ~f:(fun n -> wall_clock p ~x ~n) n

let find_nonconvex_region p ~xs ~ns =
  List.concat_map
    (fun x ->
      List.filter_map
        (fun n ->
          let ok =
            try
              denominator p ~x ~n > 0.05
              && (second_derivative_x p ~x ~n < 0. || second_derivative_n p ~x ~n < 0.)
            with Invalid_argument _ -> false
          in
          if ok then Some (x, n) else None)
        ns)
    xs
