lib/topology/topology.ml: Format Hashtbl Int List Option
