type spec = {
  nodes : int;
  cores_per_node : int;
  board_size : int;
  rs_group_size : int;
  rs_parity : int;
}

type t = { spec : spec }

let default_spec =
  { nodes = 128; cores_per_node = 8; board_size = 4; rs_group_size = 8; rs_parity = 2 }

let create spec =
  assert (spec.nodes > 0);
  assert (spec.cores_per_node > 0);
  assert (spec.board_size > 0);
  assert (spec.rs_group_size > 1);
  assert (spec.rs_parity > 0 && spec.rs_parity < spec.rs_group_size);
  { spec }

let spec t = t.spec
let node_count t = t.spec.nodes
let core_count t = t.spec.nodes * t.spec.cores_per_node

let node_of_rank t r =
  assert (r >= 0 && r < core_count t);
  r / t.spec.cores_per_node

let ranks_of_node t n =
  assert (n >= 0 && n < t.spec.nodes);
  List.init t.spec.cores_per_node (fun i -> (n * t.spec.cores_per_node) + i)

let partner_of t n =
  assert (n >= 0 && n < t.spec.nodes);
  (* Pair with the node one board ahead around the ring, so that partners
     sit on different boards whenever the cluster has more than one board:
     a whole-board (correlated) failure then still leaves every partner
     copy alive. *)
  let stride = if t.spec.nodes > t.spec.board_size then t.spec.board_size else 1 in
  (n + stride) mod t.spec.nodes

let rs_group_of t n =
  assert (n >= 0 && n < t.spec.nodes);
  n / t.spec.rs_group_size

let rs_group_count t =
  (t.spec.nodes + t.spec.rs_group_size - 1) / t.spec.rs_group_size

let rs_group_members t g =
  assert (g >= 0 && g < rs_group_count t);
  let first = g * t.spec.rs_group_size in
  let last = Int.min (first + t.spec.rs_group_size) t.spec.nodes in
  List.init (last - first) (fun i -> first + i)

let board_of t n =
  assert (n >= 0 && n < t.spec.nodes);
  n / t.spec.board_size

let adjacent t a b = board_of t a = board_of t b

let dedup_sorted l =
  let sorted = List.sort_uniq compare l in
  sorted

let min_recovery_level t ~failed =
  let failed = dedup_sorted failed in
  List.iter (fun n -> assert (n >= 0 && n < t.spec.nodes)) failed;
  match failed with
  | [] -> 1
  | _ ->
      let failed_set = Hashtbl.create 16 in
      List.iter (fun n -> Hashtbl.replace failed_set n ()) failed;
      let partner_lost = List.exists (fun n -> Hashtbl.mem failed_set (partner_of t n)) failed in
      if not partner_lost then 2
      else begin
        let per_group = Hashtbl.create 16 in
        List.iter
          (fun n ->
            let g = rs_group_of t n in
            let c = Option.value (Hashtbl.find_opt per_group g) ~default:0 in
            Hashtbl.replace per_group g (c + 1))
          failed;
        let rs_ok = Hashtbl.fold (fun _ c acc -> acc && c <= t.spec.rs_parity) per_group true in
        if rs_ok then 3 else 4
      end

let pp ppf t =
  let s = t.spec in
  Format.fprintf ppf
    "topology: %d nodes x %d cores, boards of %d, RS groups of %d (parity %d)"
    s.nodes s.cores_per_node s.board_size s.rs_group_size s.rs_parity
