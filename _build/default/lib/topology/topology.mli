(** Cluster topology for the multilevel checkpoint runtime.

    Models the structure the four FTI-style checkpoint levels care about:

    - nodes, each hosting a fixed number of cores (one MPI process per
      core, as in the paper's experiments);
    - the partner mapping of level 2 (each node's checkpoint is mirrored on
      its partner node);
    - Reed–Solomon encoding groups of level 3 (each group of [k + m] nodes
      tolerates up to [m] simultaneous losses);
    - failure domains ("boards"): groups of adjacent nodes that can crash
      together due to a shared switch or power board (paper footnote 1).

    Given a set of crashed nodes, {!min_recovery_level} answers the central
    question: which checkpoint level is sufficient to recover. *)

type t

type spec = {
  nodes : int;  (** number of nodes; must be > 0 *)
  cores_per_node : int;  (** processes per node; must be > 0 *)
  board_size : int;  (** nodes per failure domain; must divide into [nodes] ranges *)
  rs_group_size : int;  (** nodes per Reed–Solomon group, data + parity *)
  rs_parity : int;  (** tolerated losses per RS group; [0 < rs_parity < rs_group_size] *)
}

val default_spec : spec
(** 128 nodes of 8 cores (the Argonne Fusion configuration used in the
    paper), boards of 4, RS groups of 8 with 2 parity nodes. *)

val create : spec -> t
val spec : t -> spec

val node_count : t -> int
val core_count : t -> int

val node_of_rank : t -> int -> int
(** [node_of_rank t r] is the node hosting MPI rank [r] (block
    distribution).  Requires [0 <= r < core_count t]. *)

val ranks_of_node : t -> int -> int list
(** All ranks hosted by a node, ascending. *)

val partner_of : t -> int -> int
(** [partner_of t n] is the level-2 partner node of [n]: nodes are paired
    ring-wise with the node one board ahead, guaranteeing a partner on a
    different board whenever there are at least two boards. *)

val rs_group_of : t -> int -> int
(** Index of the RS group containing node [n]. *)

val rs_group_members : t -> int -> int list
(** [rs_group_members t g] lists the nodes of group [g], ascending. *)

val rs_group_count : t -> int

val board_of : t -> int -> int
(** Failure-domain (board) index of a node. *)

val adjacent : t -> int -> int -> bool
(** [adjacent t a b] holds when the two nodes share a board. *)

val min_recovery_level : t -> failed:int list -> int
(** [min_recovery_level t ~failed] is the lowest checkpoint level able to
    recover from the simultaneous crash of [failed] (duplicates allowed):

    - [1] — no node crashed (transient/software error);
    - [2] — no crashed node's partner also crashed;
    - [3] — every RS group lost at most [rs_parity] nodes;
    - [4] — otherwise (only the PFS copy survives). *)

val pp : Format.formatter -> t -> unit
