type t = {
  core_flops : float;
  net_latency : float;
  net_bandwidth : float;
  send_overhead : float;
}

let default =
  { core_flops = 1e9;
    net_latency = 2.2e-5;
    net_bandwidth = 1e9;
    send_overhead = 2e-6 }

let compute_time t ~flops =
  assert (flops >= 0.);
  flops /. t.core_flops

let message_time t ~bytes =
  assert (bytes >= 0.);
  t.net_latency +. (bytes /. t.net_bandwidth)

let log2_ceil n =
  assert (n >= 1);
  let rec loop acc pow = if pow >= n then acc else loop (acc + 1) (pow * 2) in
  loop 0 1

let collective_time t ~ranks ~bytes =
  assert (ranks >= 1);
  float_of_int (log2_ceil ranks) *. message_time t ~bytes

let linear_collective_time t ~ranks ~bytes =
  assert (ranks >= 1);
  float_of_int (ranks - 1) *. message_time t ~bytes
