type config = {
  unknowns : int;
  flops_per_unknown : float;
  iterations : int;
  halo_bytes : float;
  reduce_bytes : float;
}

let default_config =
  { unknowns = 1 lsl 22;
    flops_per_unknown = 16.;
    iterations = 30;
    halo_bytes = 4_096.;
    reduce_bytes = 8. }

let program ?(config = default_config) ~ranks () =
  let per_rank_flops =
    float_of_int config.unknowns *. config.flops_per_unknown /. float_of_int ranks
  in
  let code rank =
    let halo =
      if ranks = 1 then []
      else begin
        (* 1-D row-block partition: exchange boundary entries with the
           previous and next rank. *)
        let neighbours =
          List.filter (fun r -> r >= 0 && r < ranks) [ rank - 1; rank + 1 ]
        in
        List.map (fun src -> Program.Irecv { src }) neighbours
        @ List.map (fun dst -> Program.Isend { dst; bytes = config.halo_bytes }) neighbours
        @ [ Program.Waitall ]
      end
    in
    let iteration =
      halo
      @ [ Program.Compute per_rank_flops;
          (* alpha = rs / (p . Ap), then beta = rs' / rs *)
          Program.Allreduce { bytes = config.reduce_bytes };
          Program.Allreduce { bytes = config.reduce_bytes } ]
    in
    List.concat (List.init config.iterations (fun _ -> iteration))
  in
  Program.v ~name:(Printf.sprintf "cg-%d@%d" config.unknowns ranks) ~ranks ~code
