(** Instruction DSL for emulated MPI programs.

    Programs are SPMD: a generator produces each rank's instruction list.
    The set covers the MPI calls the paper's Heat Distribution benchmark
    uses (Section IV-A): point-to-point sends/receives (blocking and
    non-blocking with a closing wait) and the collectives Bcast, Barrier
    and Allreduce.  Message payloads carry no data — the emulator computes
    timing only — so receives match senders FIFO per (src, dst) channel,
    without tags. *)

type instr =
  | Compute of float  (** flops of local computation *)
  | Send of { dst : int; bytes : float }  (** buffered send *)
  | Recv of { src : int }  (** blocking receive *)
  | Isend of { dst : int; bytes : float }  (** non-blocking send *)
  | Irecv of { src : int }  (** posts a receive completed by [Waitall] *)
  | Waitall  (** completes every outstanding [Irecv] of this rank *)
  | Bcast of { root : int; bytes : float }
  | Barrier
  | Allreduce of { bytes : float }
  | Reduce of { root : int; bytes : float }  (** tree reduction to a root *)
  | Gather of { root : int; bytes : float }
      (** rooted linear collect ([ranks - 1] message costs) *)
  | Alltoall of { bytes : float }
      (** personalized all-to-all exchange ([ranks - 1] message costs) *)

type t = {
  name : string;
  ranks : int;
  code : int -> instr list;  (** instructions of a given rank *)
}

val v : name:string -> ranks:int -> code:(int -> instr list) -> t
(** Validated constructor; rank ids in instructions must be in range
    (checked lazily by the emulator). *)

val validate : t -> (unit, string) result
(** Static checks: peer ranks in range, no self-messages, every rank's
    [Irecv]s closed by a [Waitall], collectives appear the same number of
    times on every rank (SPMD discipline the emulator relies on). *)

val instruction_count : t -> int
(** Total instructions across ranks (cheap complexity measure). *)
