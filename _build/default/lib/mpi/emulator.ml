type result = {
  job_time : float;
  rank_times : float array;
  messages : int;
  collectives : int;
}

exception Deadlock of string

type blocked =
  | Not_blocked
  | On_recv of int  (* waiting for a message from this src *)
  | On_waitall
  | On_collective

type rank_state = {
  id : int;
  instrs : Program.instr array;
  mutable pc : int;
  mutable ltime : float;
  mutable posted_irecvs : int list;  (* reverse post order *)
  mutable blocked : blocked;
  mutable coll_counter : int;
}

type collective_entry = {
  mutable arrived : int;
  mutable tmax : float;
  mutable bytes : float;
}

let run ~machine (prog : Program.t) =
  (match Program.validate prog with
   | Ok () -> ()
   | Error e -> invalid_arg ("Emulator.run: " ^ e));
  let n = prog.Program.ranks in
  let ranks =
    Array.init n (fun id ->
        { id; instrs = Array.of_list (prog.Program.code id); pc = 0; ltime = 0.;
          posted_irecvs = []; blocked = Not_blocked; coll_counter = 0 })
  in
  let channels : (int * int, float Queue.t) Hashtbl.t = Hashtbl.create 256 in
  let channel src dst =
    match Hashtbl.find_opt channels (src, dst) with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace channels (src, dst) q;
        q
  in
  let collectives : (int, collective_entry) Hashtbl.t = Hashtbl.create 64 in
  let runnable = Queue.create () in
  let queued = Array.make n false in
  let enqueue r =
    if not queued.(r.id) then begin
      queued.(r.id) <- true;
      Queue.push r.id runnable
    end
  in
  Array.iter enqueue ranks;
  let messages = ref 0 and colls = ref 0 in
  (* Wake the destination if this message satisfies its block. *)
  let notify_dst dst =
    let r = ranks.(dst) in
    match r.blocked with
    | On_recv _ | On_waitall -> enqueue r
    | Not_blocked | On_collective -> ()
  in
  let deposit ~src ~dst ~bytes ~at =
    Queue.push (at +. Machine.message_time machine ~bytes) (channel src dst);
    incr messages;
    notify_dst dst
  in
  let try_waitall r =
    (* All posted receives must have an arrived message. *)
    let srcs = List.rev r.posted_irecvs in
    let avail =
      List.for_all (fun src -> not (Queue.is_empty (channel src r.id))) srcs
    in
    if not avail then false
    else begin
      let tmax =
        List.fold_left
          (fun acc src -> Float.max acc (Queue.pop (channel src r.id)))
          r.ltime srcs
      in
      r.ltime <- tmax;
      r.posted_irecvs <- [];
      true
    end
  in
  let enter_collective ?(linear = false) r bytes =
    let key = r.coll_counter in
    r.coll_counter <- r.coll_counter + 1;
    let entry =
      match Hashtbl.find_opt collectives key with
      | Some e -> e
      | None ->
          let e = { arrived = 0; tmax = 0.; bytes = 0. } in
          Hashtbl.replace collectives key e;
          e
    in
    entry.arrived <- entry.arrived + 1;
    entry.tmax <- Float.max entry.tmax r.ltime;
    entry.bytes <- Float.max entry.bytes bytes;
    if entry.arrived < n then begin
      r.blocked <- On_collective;
      false
    end
    else begin
      incr colls;
      let schedule_cost =
        if linear then Machine.linear_collective_time machine ~ranks:n ~bytes:entry.bytes
        else Machine.collective_time machine ~ranks:n ~bytes:entry.bytes
      in
      let completion = entry.tmax +. schedule_cost in
      Array.iter
        (fun other ->
          if other.blocked = On_collective && other.coll_counter = r.coll_counter then begin
            other.ltime <- completion;
            other.blocked <- Not_blocked;
            other.pc <- other.pc + 1;
            enqueue other
          end)
        ranks;
      r.ltime <- completion;
      true
    end
  in
  (* Run one rank until it blocks or finishes. *)
  let step r =
    let continue = ref true in
    while !continue && r.pc < Array.length r.instrs do
      match r.instrs.(r.pc) with
      | Program.Compute flops ->
          r.ltime <- r.ltime +. Machine.compute_time machine ~flops;
          r.pc <- r.pc + 1
      | Program.Send { dst; bytes } | Program.Isend { dst; bytes } ->
          r.ltime <- r.ltime +. machine.Machine.send_overhead;
          deposit ~src:r.id ~dst ~bytes ~at:r.ltime;
          r.pc <- r.pc + 1
      | Program.Recv { src } ->
          let q = channel src r.id in
          if Queue.is_empty q then begin
            r.blocked <- On_recv src;
            continue := false
          end
          else begin
            r.ltime <- Float.max r.ltime (Queue.pop q);
            r.blocked <- Not_blocked;
            r.pc <- r.pc + 1
          end
      | Program.Irecv { src } ->
          r.posted_irecvs <- src :: r.posted_irecvs;
          r.pc <- r.pc + 1
      | Program.Waitall ->
          if try_waitall r then begin
            r.blocked <- Not_blocked;
            r.pc <- r.pc + 1
          end
          else begin
            r.blocked <- On_waitall;
            continue := false
          end
      | Program.Bcast { root = _; bytes } ->
          if enter_collective r bytes then r.pc <- r.pc + 1 else continue := false
      | Program.Barrier ->
          if enter_collective r 8. then r.pc <- r.pc + 1 else continue := false
      | Program.Allreduce { bytes } ->
          if enter_collective r bytes then r.pc <- r.pc + 1 else continue := false
      | Program.Reduce { root = _; bytes } ->
          if enter_collective r bytes then r.pc <- r.pc + 1 else continue := false
      | Program.Gather { root = _; bytes } ->
          if enter_collective ~linear:true r bytes then r.pc <- r.pc + 1
          else continue := false
      | Program.Alltoall { bytes } ->
          if enter_collective ~linear:true r bytes then r.pc <- r.pc + 1
          else continue := false
    done
  in
  (* Drain the runnable queue; ranks woken during draining re-enter it. *)
  while not (Queue.is_empty runnable) do
    let id = Queue.pop runnable in
    queued.(id) <- false;
    let r = ranks.(id) in
    (match r.blocked with
     | On_recv _ | On_waitall | On_collective -> r.blocked <- Not_blocked
     | Not_blocked -> ());
    step r
  done;
  let stuck = Array.exists (fun r -> r.pc < Array.length r.instrs) ranks in
  if stuck then begin
    let blocked_desc =
      Array.to_list ranks
      |> List.filter_map (fun r ->
             if r.pc < Array.length r.instrs then
               Some (Printf.sprintf "rank %d pc=%d" r.id r.pc)
             else None)
      |> String.concat ", "
    in
    raise (Deadlock ("no progress: " ^ blocked_desc))
  end;
  { job_time = Array.fold_left (fun acc r -> Float.max acc r.ltime) 0. ranks;
    rank_times = Array.map (fun r -> r.ltime) ranks;
    messages = !messages;
    collectives = !colls }
