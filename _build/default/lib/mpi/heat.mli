(** The Heat Distribution MPI program (paper Section IV-A).

    A Jacobi iteration over a [grid x grid] domain, block-decomposed in
    2-D; every iteration exchanges ghost rows/columns with the four
    neighbours (Irecv/Isend/Waitall) and periodically evaluates global
    convergence with an Allreduce — the exact communication pattern the
    paper's application uses (ghost arrays as in the Parallel Ocean
    Program).

    {!program} builds the timing-emulator instance; {!Jacobi} is a real
    sequential solver over actual float arrays, used by the FTI
    end-to-end example to checkpoint genuine application state. *)

type config = {
  grid : int;  (** domain is [grid x grid] cells *)
  iterations : int;
  flops_per_cell : float;  (** stencil cost (default 6 flops) *)
  reduce_every : int;  (** iterations between convergence Allreduces *)
}

val default_config : config
(** 1,024 x 1,024 cells, 50 iterations, Allreduce every 10. *)

val decompose : ranks:int -> int * int
(** [decompose ~ranks] is the most-square [px * py = ranks] factorization
    ([px <= py]). *)

val program : ?config:config -> ranks:int -> unit -> Program.t
(** The emulated strong-scaling program at the given rank count. *)

(** Real sequential Jacobi solver on float arrays (with fixed boundary),
    for end-to-end checkpoint/restart demos. *)
module Jacobi : sig
  type grid

  val create : size:int -> grid
  (** Interior initialized to 0, boundary to 0; add sources next. *)

  val set : grid -> int -> int -> float -> unit
  val get : grid -> int -> int -> float
  val size : grid -> int

  val step : grid -> float
  (** One Jacobi sweep (interior cells only); returns the max absolute
      cell update (residual). *)

  val run : grid -> iterations:int -> float
  (** [run g ~iterations] performs sweeps and returns the last residual. *)

  val serialize : grid -> Bytes.t
  (** Checkpoint payload: size header + raw cells. *)

  val deserialize : Bytes.t -> grid
  (** @raise Invalid_argument on malformed payloads. *)

  val equal : grid -> grid -> bool
end
