type config = {
  grid : int;
  iterations : int;
  flops_per_cell : float;
  reduce_every : int;
}

let default_config =
  { grid = 1024; iterations = 50; flops_per_cell = 6.; reduce_every = 10 }

let decompose ~ranks =
  assert (ranks > 0);
  let rec search p best =
    if p * p > ranks then best
    else if ranks mod p = 0 then search (p + 1) p
    else search (p + 1) best
  in
  let px = search 1 1 in
  (px, ranks / px)

let program ?(config = default_config) ~ranks () =
  let px, py = decompose ~ranks in
  let cells_x = config.grid / px and cells_y = config.grid / py in
  let cells_per_rank = float_of_int (Int.max 1 cells_x * Int.max 1 cells_y) in
  let code rank =
    let ix = rank mod px and iy = rank / px in
    let neighbor dx dy =
      let jx = ix + dx and jy = iy + dy in
      if jx < 0 || jx >= px || jy < 0 || jy >= py then None else Some ((jy * px) + jx)
    in
    let neighbors =
      List.filter_map (fun (dx, dy) -> neighbor dx dy) [ (-1, 0); (1, 0); (0, -1); (0, 1) ]
    in
    let ghost_bytes dx =
      (* Exchanging a ghost column costs cells_y doubles; a ghost row
         cells_x doubles. *)
      8. *. float_of_int (if dx then Int.max 1 cells_y else Int.max 1 cells_x)
    in
    let exchange =
      if neighbors = [] then []
      else begin
        let posts = List.map (fun src -> Program.Irecv { src }) neighbors in
        let sends =
          List.map
            (fun dst ->
              let horizontal = dst mod px <> ix in
              Program.Isend { dst; bytes = ghost_bytes horizontal })
            neighbors
        in
        posts @ sends @ [ Program.Waitall ]
      end
    in
    let iteration i =
      let body = exchange @ [ Program.Compute (cells_per_rank *. config.flops_per_cell) ] in
      if (i + 1) mod config.reduce_every = 0 then body @ [ Program.Allreduce { bytes = 8. } ]
      else body
    in
    List.concat (List.init config.iterations iteration)
  in
  Program.v ~name:(Printf.sprintf "heat-%dx%d@%d" config.grid config.grid ranks) ~ranks ~code

module Jacobi = struct
  type grid = { size : int; mutable cells : float array; mutable scratch : float array }

  let create ~size =
    assert (size >= 3);
    { size; cells = Array.make (size * size) 0.; scratch = Array.make (size * size) 0. }

  let idx g i j = (i * g.size) + j

  let check g i j = assert (i >= 0 && i < g.size && j >= 0 && j < g.size)

  let set g i j v =
    check g i j;
    g.cells.(idx g i j) <- v

  let get g i j =
    check g i j;
    g.cells.(idx g i j)

  let size g = g.size

  let step g =
    let n = g.size in
    let src = g.cells and dst = g.scratch in
    (* Boundary rows/columns are fixed (Dirichlet). *)
    for j = 0 to n - 1 do
      dst.(j) <- src.(j);
      dst.(((n - 1) * n) + j) <- src.(((n - 1) * n) + j)
    done;
    let residual = ref 0. in
    for i = 1 to n - 2 do
      dst.(i * n) <- src.(i * n);
      dst.((i * n) + n - 1) <- src.((i * n) + n - 1);
      for j = 1 to n - 2 do
        let v =
          0.25
          *. (src.(((i - 1) * n) + j) +. src.(((i + 1) * n) + j)
              +. src.((i * n) + j - 1) +. src.((i * n) + j + 1))
        in
        dst.((i * n) + j) <- v;
        residual := Float.max !residual (Float.abs (v -. src.((i * n) + j)))
      done
    done;
    g.cells <- dst;
    g.scratch <- src;
    !residual

  let run g ~iterations =
    assert (iterations >= 0);
    let r = ref 0. in
    for _ = 1 to iterations do
      r := step g
    done;
    !r

  let serialize g =
    let n = g.size in
    let buf = Bytes.create (8 + (8 * n * n)) in
    Bytes.set_int64_le buf 0 (Int64.of_int n);
    Array.iteri
      (fun k v -> Bytes.set_int64_le buf (8 + (8 * k)) (Int64.bits_of_float v))
      g.cells;
    buf

  let deserialize buf =
    if Bytes.length buf < 8 then invalid_arg "Jacobi.deserialize: truncated header";
    let n = Int64.to_int (Bytes.get_int64_le buf 0) in
    if n < 3 || Bytes.length buf <> 8 + (8 * n * n) then
      invalid_arg "Jacobi.deserialize: inconsistent payload size";
    let g = create ~size:n in
    for k = 0 to (n * n) - 1 do
      g.cells.(k) <- Int64.float_of_bits (Bytes.get_int64_le buf (8 + (8 * k)))
    done;
    g

  let equal a b = a.size = b.size && a.cells = b.cells
end
