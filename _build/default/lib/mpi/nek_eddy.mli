(** A Nek5000 "eddy_uv"-like workload (paper Fig. 2(b)).

    The paper observes that this spectral-element Navier–Stokes monitor
    speeds up quickly at small scales and {e slows down} beyond ~100
    cores because communication grows with the rank count.  We model the
    same shape: each timestep computes a shrinking per-rank share of the
    work but pays collective costs (pressure-solve Allreduces) whose
    tree depth grows logarithmically with the scale, plus nearest-
    neighbour ring exchanges — so the emulated speedup peaks and then
    declines, exactly the regime where the quadratic fit over the
    ascending range matters. *)

type config = {
  elements : int;  (** total spectral elements *)
  flops_per_element : float;
  timesteps : int;
  allreduces_per_step : int;  (** pressure iterations per timestep *)
  allreduce_bytes : float;
  ring_bytes : float;  (** surface-exchange bytes per neighbour *)
}

val default_config : config
(** Calibrated so the emulated speedup peaks near 100 ranks, matching
    Fig. 2(b). *)

val program : ?config:config -> ranks:int -> unit -> Program.t
