lib/mpi/heat.ml: Array Bytes Float Int Int64 List Printf Program
