lib/mpi/emulator.mli: Machine Program
