lib/mpi/program.ml: List Printf Result
