lib/mpi/nek_eddy.ml: List Printf Program
