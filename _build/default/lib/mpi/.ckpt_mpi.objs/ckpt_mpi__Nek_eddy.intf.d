lib/mpi/nek_eddy.mli: Program
