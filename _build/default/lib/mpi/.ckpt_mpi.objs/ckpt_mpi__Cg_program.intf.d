lib/mpi/cg_program.mli: Program
