lib/mpi/cg_program.ml: List Printf Program
