lib/mpi/machine.ml:
