lib/mpi/speedup_study.ml: Array Ckpt_numerics Emulator List
