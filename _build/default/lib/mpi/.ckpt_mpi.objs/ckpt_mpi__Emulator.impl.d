lib/mpi/emulator.ml: Array Float Hashtbl List Machine Printf Program Queue String
