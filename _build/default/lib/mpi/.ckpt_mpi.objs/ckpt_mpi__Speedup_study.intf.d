lib/mpi/speedup_study.mli: Machine Program
