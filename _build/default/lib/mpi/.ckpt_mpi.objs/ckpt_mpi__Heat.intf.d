lib/mpi/heat.mli: Bytes Program
