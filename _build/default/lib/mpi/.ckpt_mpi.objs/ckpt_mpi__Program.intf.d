lib/mpi/program.mli:
