lib/mpi/machine.mli:
