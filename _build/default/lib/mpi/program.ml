type instr =
  | Compute of float
  | Send of { dst : int; bytes : float }
  | Recv of { src : int }
  | Isend of { dst : int; bytes : float }
  | Irecv of { src : int }
  | Waitall
  | Bcast of { root : int; bytes : float }
  | Barrier
  | Allreduce of { bytes : float }
  | Reduce of { root : int; bytes : float }
  | Gather of { root : int; bytes : float }
  | Alltoall of { bytes : float }

type t = { name : string; ranks : int; code : int -> instr list }

let v ~name ~ranks ~code =
  assert (ranks > 0);
  { name; ranks; code }

let validate t =
  let check_rank what r =
    if r < 0 || r >= t.ranks then Error (Printf.sprintf "%s rank %d out of range" what r)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let check_instr me instr =
    match instr with
    | Compute f -> if f < 0. then Error "negative compute" else Ok ()
    | Send { dst; _ } | Isend { dst; _ } ->
        let* () = check_rank "dst" dst in
        if dst = me then Error "self message" else Ok ()
    | Recv { src } | Irecv { src } ->
        let* () = check_rank "src" src in
        if src = me then Error "self message" else Ok ()
    | Bcast { root; _ } | Reduce { root; _ } | Gather { root; _ } ->
        check_rank "root" root
    | Waitall | Barrier | Allreduce _ | Alltoall _ -> Ok ()
  in
  let collective_count instrs =
    List.length
      (List.filter
         (function
           | Bcast _ | Barrier | Allreduce _ | Reduce _ | Gather _ | Alltoall _ -> true
           | Compute _ | Send _ | Recv _ | Isend _ | Irecv _ | Waitall -> false)
         instrs)
  in
  let rec scan_ranks r expected_collectives =
    if r >= t.ranks then Ok ()
    else begin
      let instrs = t.code r in
      let rec scan open_irecvs = function
        | [] ->
            if open_irecvs > 0 then Error (Printf.sprintf "rank %d: unclosed Irecv" r)
            else Ok ()
        | instr :: rest -> (
            match check_instr r instr with
            | Error e -> Error (Printf.sprintf "rank %d: %s" r e)
            | Ok () -> (
                match instr with
                | Irecv _ -> scan (open_irecvs + 1) rest
                | Waitall -> scan 0 rest
                | Compute _ | Send _ | Recv _ | Isend _ | Bcast _ | Barrier
                | Allreduce _ | Reduce _ | Gather _ | Alltoall _ ->
                    scan open_irecvs rest))
      in
      let* () = scan 0 instrs in
      let c = collective_count instrs in
      match expected_collectives with
      | None -> scan_ranks (r + 1) (Some c)
      | Some e when e = c -> scan_ranks (r + 1) expected_collectives
      | Some e ->
          Error
            (Printf.sprintf "rank %d: %d collectives, rank 0 has %d (SPMD mismatch)" r c e)
    end
  in
  scan_ranks 0 None

let instruction_count t =
  let total = ref 0 in
  for r = 0 to t.ranks - 1 do
    total := !total + List.length (t.code r)
  done;
  !total
