type config = {
  elements : int;
  flops_per_element : float;
  timesteps : int;
  allreduces_per_step : int;
  allreduce_bytes : float;
  ring_bytes : float;
}

(* With the default machine (22 us latency), a speedup peak near N = 100:
   the per-step serial compute C satisfies N_peak = C ln2 / (k * msg), so
   C ~ 0.058 s = 10,000 elements x 5,800 flops at 1 Gflop/s. *)
let default_config =
  { elements = 10_000;
    flops_per_element = 5_800.;
    timesteps = 20;
    allreduces_per_step = 16;
    allreduce_bytes = 64.;
    ring_bytes = 2_048. }

let program ?(config = default_config) ~ranks () =
  let per_rank_flops =
    float_of_int config.elements *. config.flops_per_element /. float_of_int ranks
  in
  let code rank =
    let ring_exchange =
      if ranks = 1 then []
      else begin
        let next = (rank + 1) mod ranks in
        let prev = (rank + ranks - 1) mod ranks in
        [ Program.Irecv { src = prev };
          Program.Isend { dst = next; bytes = config.ring_bytes };
          Program.Waitall ]
      end
    in
    let pressure_solve =
      List.init config.allreduces_per_step (fun _ ->
          Program.Allreduce { bytes = config.allreduce_bytes })
    in
    let timestep = (Program.Compute per_rank_flops :: ring_exchange) @ pressure_solve in
    List.concat (List.init config.timesteps (fun _ -> timestep))
  in
  Program.v ~name:(Printf.sprintf "nek-eddy@%d" ranks) ~ranks ~code
