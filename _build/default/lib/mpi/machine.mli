(** Machine performance model for the MPI emulator.

    A LogGP-flavoured model: computation proceeds at [core_flops]
    flop/s per rank; a point-to-point message of [b] bytes takes
    [net_latency + b / net_bandwidth] seconds to arrive, with a small
    sender-side overhead; collectives over [n] ranks multiply the
    per-message cost by [ceil (log2 n)] (binomial-tree schedule).

    The default coefficients are calibrated so the emulated Heat
    Distribution program reproduces the speedup shape of the paper's
    Fig. 2(a) (near-linear at small scales, quadratic bend at large
    scales, fitted slope [kappa ~ 0.46]). *)

type t = {
  core_flops : float;  (** per-rank compute rate, flop/s *)
  net_latency : float;  (** seconds per message *)
  net_bandwidth : float;  (** bytes/second per link *)
  send_overhead : float;  (** sender CPU seconds per message *)
}

val default : t
(** A Fusion-like commodity cluster: 1 Gflop/s effective per core,
    22 us latency, 1 GB/s links. *)

val compute_time : t -> flops:float -> float
val message_time : t -> bytes:float -> float
(** Arrival delay of a point-to-point message. *)

val collective_time : t -> ranks:int -> bytes:float -> float
(** Duration of a tree-based collective (bcast/reduce/allreduce step). *)

val linear_collective_time : t -> ranks:int -> bytes:float -> float
(** Duration of a rooted linear collective (gather) or personalized
    exchange (alltoall): [ranks - 1] sequential message costs. *)

val log2_ceil : int -> int
(** [log2_ceil n] is [ceil (log2 n)] with [log2_ceil 1 = 0]. *)
