(** An emulated distributed conjugate-gradient solver.

    The third workload class next to the stencil (Heat) and the
    spectral-element monitor (Nek): a Krylov solver's communication is
    dominated by {e two Allreduces per iteration} (the dot products for
    alpha and beta) plus a halo exchange for the sparse matrix–vector
    product.  Allreduce latency grows with [log N] while per-rank compute
    shrinks as [1/N], so CG's speedup saturates earlier than a pure
    stencil — a well-known scaling pathology this program reproduces. *)

type config = {
  unknowns : int;  (** global problem size *)
  flops_per_unknown : float;  (** SpMV + vector ops per iteration *)
  iterations : int;
  halo_bytes : float;  (** per-neighbour ghost exchange *)
  reduce_bytes : float;  (** dot-product payload *)
}

val default_config : config
(** 2**22 unknowns, 16 flops each, 30 iterations. *)

val program : ?config:config -> ranks:int -> unit -> Program.t
