(** Speedup measurement and quadratic fitting (paper Fig. 2).

    Runs an emulated program across scales, computes
    [speedup(N) = T(1) / T(N)], and least-squares fits the paper's
    Eq. (12) quadratic through the origin over the ascending range —
    yielding the [kappa] and [N_star] the optimizer consumes. *)

type point = {
  ranks : int;
  job_time : float;
  speedup : float;
}

type fit = {
  kappa : float;  (** slope at the origin *)
  quad : float;  (** quadratic coefficient (negative for peaked curves) *)
  n_star : float;  (** implied peak scale [-kappa / (2 quad)] *)
  r_squared : float;
  points_used : int;  (** points in the ascending range used by the fit *)
}

val measure :
  machine:Machine.t -> program:(ranks:int -> Program.t) -> scales:int list -> point list
(** Emulates the program at 1 plus each requested scale.  Scales must be
    positive; duplicates are measured once. *)

val ascending_range : point list -> point list
(** Points up to (and including) the maximum-speedup point — the paper
    fits only the range before the speedup decays (Fig. 2(b)). *)

val fit_quadratic : point list -> fit
(** Fit Eq. (12) through the origin on the given points.
    @raise Invalid_argument with fewer than 2 points or a non-negative
    quadratic coefficient (curve has no peak: not enough bend measured). *)

val estimate_kappa : point -> float
(** The paper's quick estimate: [speedup / ranks] at a single mid-size
    measurement (Section III-C.2's 77/160 example). *)
