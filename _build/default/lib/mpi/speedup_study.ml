module Least_squares = Ckpt_numerics.Least_squares

type point = { ranks : int; job_time : float; speedup : float }

type fit = {
  kappa : float;
  quad : float;
  n_star : float;
  r_squared : float;
  points_used : int;
}

let measure ~machine ~program ~scales =
  List.iter (fun s -> assert (s > 0)) scales;
  let scales = List.sort_uniq compare (1 :: scales) in
  let base = (Emulator.run ~machine (program ~ranks:1)).Emulator.job_time in
  List.map
    (fun ranks ->
      let job_time =
        if ranks = 1 then base else (Emulator.run ~machine (program ~ranks)).Emulator.job_time
      in
      { ranks; job_time; speedup = base /. job_time })
    scales

let ascending_range points =
  match points with
  | [] -> []
  | _ ->
      let best =
        List.fold_left (fun acc p -> if p.speedup > acc.speedup then p else acc)
          (List.hd points) points
      in
      List.filter (fun p -> p.ranks <= best.ranks) points

let fit_quadratic points =
  if List.length points < 2 then invalid_arg "Speedup_study.fit_quadratic: need >= 2 points";
  let xs = Array.of_list (List.map (fun p -> float_of_int p.ranks) points) in
  let ys = Array.of_list (List.map (fun p -> p.speedup) points) in
  let { Least_squares.coefficients; r_squared; _ } =
    Least_squares.polyfit_through_origin ~degree:2 ~xs ~ys
  in
  let kappa = coefficients.(0) and quad = coefficients.(1) in
  if quad >= 0. then
    invalid_arg "Speedup_study.fit_quadratic: no curvature measured (quad >= 0)";
  { kappa; quad; n_star = -.kappa /. (2. *. quad); r_squared;
    points_used = List.length points }

let estimate_kappa p = p.speedup /. float_of_int p.ranks
