(** Timing emulator for {!Program} instances.

    A conservative dataflow scheduler: every rank keeps a local clock and
    runs until it blocks on a receive or a collective; sends deposit
    timestamped messages into FIFO (src, dst) channels; collectives
    rendezvous all ranks and complete at the latest arrival plus the
    tree-schedule cost.  Deterministic — no randomness, no real time.

    This is the stand-in for the paper's real-cluster MPI runs: it yields
    the job completion time of a program at a given scale, from which
    speedup curves (paper Fig. 2) are measured. *)

type result = {
  job_time : float;  (** completion time of the slowest rank *)
  rank_times : float array;
  messages : int;  (** point-to-point messages exchanged *)
  collectives : int;  (** collective operations executed *)
}

exception Deadlock of string
(** Raised when no rank can make progress (mismatched sends/receives). *)

val run : machine:Machine.t -> Program.t -> result
(** [run ~machine prog] emulates the program to completion.
    @raise Deadlock on communication mismatches.
    @raise Invalid_argument when {!Program.validate} fails. *)
