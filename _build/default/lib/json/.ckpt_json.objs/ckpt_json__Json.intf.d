lib/json/json.mli:
