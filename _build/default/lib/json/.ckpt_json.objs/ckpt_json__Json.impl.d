lib/json/json.ml: Array Buffer Char Float List Option Printf String
