module Rng = Ckpt_numerics.Rng
module Dist = Ckpt_numerics.Dist
module Special = Ckpt_numerics.Special

type law = Exponential | Weibull of { shape : float }

type level_stream = {
  rng : Rng.t;
  rate : float;  (* mean events per second *)
  law : law;
  weibull_scale : float;  (* pre-computed for Weibull laws *)
  mutable next : float;  (* absolute time of this level's next arrival *)
}

type event = { at : float; level : int }

type t = { streams : level_stream array; total : float }

let sample_gap s =
  match s.law with
  | Exponential -> Dist.exponential s.rng ~rate:s.rate
  | Weibull { shape } -> Dist.weibull s.rng ~shape ~scale:s.weibull_scale

let create ?laws ~rng ~spec ~scale () =
  let levels = Failure_spec.levels spec in
  let laws =
    match laws with
    | None -> Array.make levels Exponential
    | Some laws ->
        if Array.length laws <> levels then
          invalid_arg "Arrivals.create: one law per level required";
        Array.iter
          (function
            | Exponential -> ()
            | Weibull { shape } ->
                if shape <= 0. then invalid_arg "Arrivals.create: Weibull shape <= 0")
          laws;
        laws
  in
  let streams =
    Array.init levels (fun i ->
        let rate = Failure_spec.rate_per_second spec ~level:(i + 1) ~scale in
        let weibull_scale =
          match laws.(i) with
          | Exponential -> 0.
          | Weibull { shape } ->
              if rate <= 0. then 0.
              else 1. /. (rate *. Special.gamma (1. +. (1. /. shape)))
        in
        let s =
          { rng = Rng.split rng; rate; law = laws.(i); weibull_scale; next = infinity }
        in
        if rate > 0. then s.next <- sample_gap s;
        s)
  in
  { streams; total = Array.fold_left (fun acc s -> acc +. s.rate) 0. streams }

let total_rate t = t.total

let next_after t now =
  if t.total <= 0. then None
  else begin
    (* Advance every level past [now], then take the earliest. *)
    Array.iter
      (fun s ->
        if s.rate > 0. then
          while s.next <= now do
            s.next <- s.next +. sample_gap s
          done)
      t.streams;
    let best = ref (-1) in
    Array.iteri
      (fun i s ->
        if s.rate > 0. && (!best < 0 || s.next < t.streams.(!best).next) then best := i)
      t.streams;
    let s = t.streams.(!best) in
    let at = s.next in
    s.next <- at +. sample_gap s;
    Some { at; level = !best + 1 }
  end

let sequence t ~horizon =
  let rec loop now acc =
    match next_after t now with
    | None -> List.rev acc
    | Some ev -> if ev.at >= horizon then List.rev acc else loop ev.at (ev :: acc)
  in
  loop 0. []
