(** Sampling which nodes crash in a failure event.

    The analytic model drives failure *levels* directly from the rate
    vectors; this module provides the complementary, mechanism-level view
    used by the FTI runtime emulation: a failure event crashes a concrete
    set of nodes (possibly several within a correlated-failure window —
    paper footnote 1), and the damage determines the minimum checkpoint
    level able to recover, via {!Ckpt_topology.Topology.min_recovery_level}. *)

type kind =
  | Software  (** transient error, no node lost — level-1 recovery *)
  | Single_node  (** one node crashes *)
  | Board  (** a whole failure domain crashes (shared switch/power) *)
  | Multi of int  (** [k] independently chosen nodes crash within the window *)

type t

val create :
  ?p_software:float ->
  ?p_single:float ->
  ?p_board:float ->
  ?multi_max:int ->
  rng:Ckpt_numerics.Rng.t ->
  topology:Ckpt_topology.Topology.t ->
  unit ->
  t
(** Probabilities of the first three kinds (defaults 0.5 / 0.35 / 0.1; must
    sum to at most 1); the remainder is a [Multi k] event with [k] uniform
    in [\[2, multi_max\]] (default 6). *)

val sample_kind : t -> kind
val crashed_nodes : t -> kind -> int list
(** Concrete crash sites for an event of the given kind. *)

val sample : t -> kind * int list * int
(** [sample t] draws a failure event: its kind, the crashed nodes and the
    minimum recovery level implied by the damage. *)

val recovery_level : t -> failed:int list -> int
(** Classification only. *)
