module Rng = Ckpt_numerics.Rng
module Topology = Ckpt_topology.Topology

type kind = Software | Single_node | Board | Multi of int

type t = {
  rng : Rng.t;
  topology : Topology.t;
  p_software : float;
  p_single : float;
  p_board : float;
  multi_max : int;
}

let create ?(p_software = 0.5) ?(p_single = 0.35) ?(p_board = 0.1) ?(multi_max = 6)
    ~rng ~topology () =
  assert (p_software >= 0. && p_single >= 0. && p_board >= 0.);
  assert (p_software +. p_single +. p_board <= 1. +. 1e-12);
  assert (multi_max >= 2);
  { rng; topology; p_software; p_single; p_board; multi_max }

let sample_kind t =
  let u = Rng.float t.rng in
  if u < t.p_software then Software
  else if u < t.p_software +. t.p_single then Single_node
  else if u < t.p_software +. t.p_single +. t.p_board then Board
  else Multi (2 + Rng.int t.rng (t.multi_max - 1))

let random_node t = Rng.int t.rng (Topology.node_count t.topology)

let crashed_nodes t kind =
  match kind with
  | Software -> []
  | Single_node -> [ random_node t ]
  | Board ->
      let board_size = (Topology.spec t.topology).Topology.board_size in
      let node = random_node t in
      let first = node - (node mod board_size) in
      let last = Int.min (first + board_size) (Topology.node_count t.topology) in
      List.init (last - first) (fun i -> first + i)
  | Multi k -> List.init k (fun _ -> random_node t)

let recovery_level t ~failed = Topology.min_recovery_level t.topology ~failed

let sample t =
  let kind = sample_kind t in
  let failed = crashed_nodes t kind in
  (kind, failed, recovery_level t ~failed)
