lib/failures/arrivals.ml: Array Ckpt_numerics Failure_spec List
