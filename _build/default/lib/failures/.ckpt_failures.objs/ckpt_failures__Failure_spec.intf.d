lib/failures/failure_spec.mli: Format
