lib/failures/crash_model.ml: Ckpt_numerics Ckpt_topology Int List
