lib/failures/arrivals.mli: Ckpt_numerics Failure_spec
