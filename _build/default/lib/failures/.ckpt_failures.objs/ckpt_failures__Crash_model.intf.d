lib/failures/crash_model.mli: Ckpt_numerics Ckpt_topology
