lib/failures/failure_spec.ml: Array Format List Printf String
