lib/fti/executor.mli: Bytes Ckpt_topology
