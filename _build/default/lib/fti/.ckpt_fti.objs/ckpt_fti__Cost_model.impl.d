lib/fti/cost_model.ml: Array Ckpt_model Ckpt_storage
