lib/fti/executor.ml: Array Bytes Ckpt_topology Hashtbl List Runtime
