lib/fti/runtime.ml: Array Bytes Ckpt_storage Ckpt_topology Int Int64 List Option Printf
