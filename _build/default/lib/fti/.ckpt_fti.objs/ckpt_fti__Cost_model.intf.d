lib/fti/cost_model.mli: Ckpt_model Ckpt_storage
