lib/fti/runtime.mli: Bytes Ckpt_storage Ckpt_topology
