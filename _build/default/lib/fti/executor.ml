module Topology = Ckpt_topology.Topology

type 'a app = {
  init : int -> 'a;
  step : iteration:int -> node:int -> 'a -> 'a;
  serialize : 'a -> Bytes.t;
  deserialize : Bytes.t -> 'a;
}

type schedule = { interval : int; level_of : int -> int }

let fti_cadence =
  { interval = 2;
    level_of =
      (fun k ->
        match k mod 9 with
        | 3 -> 2
        | 6 -> 3
        | 0 -> 4
        | _ -> 1) }

type stats = {
  completed_iterations : int;
  crashes_injected : int;
  recoveries : (int * int) list;
  reexecuted_iterations : int;
}

exception Unrecoverable of { iteration : int; crashed : int list }

let run_crash_free ~topology app ~iterations =
  assert (iterations >= 0);
  let nodes = Topology.node_count topology in
  let shards = Array.init nodes app.init in
  for it = 1 to iterations do
    for node = 0 to nodes - 1 do
      shards.(node) <- app.step ~iteration:it ~node shards.(node)
    done
  done;
  shards

let run ~topology app ~iterations ~schedule ~crashes =
  if schedule.interval < 1 then invalid_arg "Executor.run: interval < 1";
  if iterations < 0 then invalid_arg "Executor.run: negative iterations";
  let nodes = Topology.node_count topology in
  List.iter
    (fun (it, crashed) ->
      if it < 1 || it > iterations then invalid_arg "Executor.run: crash iteration out of range";
      List.iter
        (fun n -> if n < 0 || n >= nodes then invalid_arg "Executor.run: crash node out of range")
        crashed)
    crashes;
  let crashes = List.stable_sort (fun (a, _) (b, _) -> compare a b) crashes in
  let runtime = Runtime.create ~topology () in
  let shards = Array.init nodes app.init in
  let pending = ref crashes in
  let crashes_injected = ref 0 in
  let recoveries = ref [] in
  let reexecuted = ref 0 in
  (* Checkpoint ids are a fresh counter (the runtime requires strictly
     increasing ids even when re-executed work re-takes a checkpoint);
     [iteration_of_id] maps a recovered checkpoint back to the iteration
     count it captured. *)
  let next_id = ref 0 in
  let iteration_of_id : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let checkpoint_after it =
    if it > 0 && it mod schedule.interval = 0 then begin
      let k = it / schedule.interval in
      let level = schedule.level_of k in
      if level < 1 || level > 4 then invalid_arg "Executor.run: schedule level out of range";
      incr next_id;
      Hashtbl.replace iteration_of_id !next_id it;
      Runtime.checkpoint runtime ~ckpt_id:!next_id ~level
        ~data:(fun node -> app.serialize shards.(node))
    end
  in
  (* Runs the loop from [it] (iterations completed so far). *)
  let rec execute it =
    if it >= iterations then it
    else begin
      let next = it + 1 in
      (* Inject every crash scheduled for the start of iteration [next]. *)
      let due, rest = List.partition (fun (at, _) -> at = next) !pending in
      pending := rest;
      if due <> [] then begin
        let crashed = List.concat_map snd due in
        crashes_injected := !crashes_injected + List.length due;
        Runtime.crash_nodes runtime crashed;
        match Runtime.recover runtime with
        | Some r ->
            let resumed = Hashtbl.find iteration_of_id r.Runtime.ckpt_id in
            recoveries := (resumed, r.Runtime.level_used) :: !recoveries;
            for node = 0 to nodes - 1 do
              shards.(node) <- app.deserialize (r.Runtime.data node)
            done;
            reexecuted := !reexecuted + (it - resumed);
            execute resumed
        | None ->
            (* Nothing survives: deterministic re-initialization is the
               implicit checkpoint at iteration 0 (the job can always be
               resubmitted from its inputs). *)
            recoveries := (0, 0) :: !recoveries;
            for node = 0 to nodes - 1 do
              shards.(node) <- app.init node
            done;
            reexecuted := !reexecuted + it;
            execute 0
      end
      else begin
        for node = 0 to nodes - 1 do
          shards.(node) <- app.step ~iteration:next ~node shards.(node)
        done;
        checkpoint_after next;
        execute next
      end
    end
  in
  let completed = execute 0 in
  ( shards,
    { completed_iterations = completed;
      crashes_injected = !crashes_injected;
      recoveries = List.rev !recoveries;
      reexecuted_iterations = !reexecuted } )
