module Topology = Ckpt_topology.Topology
module Store = Ckpt_storage.Object_store
module Rs = Ckpt_storage.Reed_solomon

type t = {
  topology : Topology.t;
  store : Store.t;
  mutable history : (int * int) list;  (* (ckpt_id, level), newest first *)
}

type recovery = { ckpt_id : int; level_used : int; data : int -> Bytes.t }

let create ~topology () =
  { topology;
    store = Store.create ~nodes:(Topology.node_count topology);
    history = [] }

let topology t = t.topology
let store t = t.store
let history t = t.history

(* --- storage keys ------------------------------------------------------ *)

let key_local id node = Printf.sprintf "d/%d/%d" id node
let key_partner id node = Printf.sprintf "p/%d/%d" id node
let key_parity id g j = Printf.sprintf "r/%d/%d/%d" id g j
let key_parity_meta id g j = Printf.sprintf "rm/%d/%d/%d" id g j
let key_pfs id node = Printf.sprintf "f/%d/%d" id node

(* --- Reed-Solomon framing ---------------------------------------------
   Shards are the node payloads, length-prefixed and zero-padded to the
   group's common width so that unequal payloads encode correctly. *)

let frame payload width =
  let len = Bytes.length payload in
  assert (width >= len + 8);
  let shard = Bytes.make width '\000' in
  Bytes.set_int64_le shard 0 (Int64.of_int len);
  Bytes.blit payload 0 shard 8 len;
  shard

let unframe shard =
  let len = Int64.to_int (Bytes.get_int64_le shard 0) in
  if len < 0 || len + 8 > Bytes.length shard then
    invalid_arg "Runtime: corrupt RS shard framing";
  Bytes.sub shard 8 len

let group_width payloads =
  8 + Array.fold_left (fun acc p -> Int.max acc (Bytes.length p)) 0 payloads

(* Holder of parity shard [j] of group [g]: the [j]-th member of the next
   group around the ring, so that losing a whole group never loses its own
   parity. *)
let parity_holder t g j =
  let groups = Topology.rs_group_count t.topology in
  let next = (g + 1) mod groups in
  let members = Array.of_list (Topology.rs_group_members t.topology next) in
  members.(j mod Array.length members)

let parity_count t group_size =
  Int.min (Topology.spec t.topology).Topology.rs_parity (group_size - 1)

(* --- checkpoint writes ------------------------------------------------- *)

let write_rs_group t ~ckpt_id ~g ~data =
  let members = Array.of_list (Topology.rs_group_members t.topology g) in
  let payloads = Array.map data members in
  let width = group_width payloads in
  let shards = Array.map (fun p -> frame p width) payloads in
  let parity = parity_count t (Array.length members) in
  if parity >= 1 then begin
    let codec = Rs.create ~data:(Array.length members) ~parity in
    let parity_shards = Rs.encode codec shards in
    let meta = Bytes.create 8 in
    Bytes.set_int64_le meta 0 (Int64.of_int width);
    Array.iteri
      (fun j shard ->
        let holder = parity_holder t g j in
        Store.put_local t.store ~node:holder ~key:(key_parity ckpt_id g j) shard;
        Store.put_local t.store ~node:holder ~key:(key_parity_meta ckpt_id g j) meta)
      parity_shards
  end

let checkpoint t ~ckpt_id ~level ~data =
  if level < 1 || level > 4 then invalid_arg "Runtime.checkpoint: level out of range";
  (match t.history with
   | (newest, _) :: _ when ckpt_id <= newest ->
       invalid_arg "Runtime.checkpoint: checkpoint ids must increase"
   | _ -> ());
  let nodes = Topology.node_count t.topology in
  (* Every level keeps the fast local copy (FTI's L1 baseline). *)
  for node = 0 to nodes - 1 do
    Store.put_local t.store ~node ~key:(key_local ckpt_id node) (data node)
  done;
  if level >= 2 then
    for node = 0 to nodes - 1 do
      let partner = Topology.partner_of t.topology node in
      Store.put_local t.store ~node:partner ~key:(key_partner ckpt_id node) (data node)
    done;
  if level >= 3 then
    for g = 0 to Topology.rs_group_count t.topology - 1 do
      write_rs_group t ~ckpt_id ~g ~data
    done;
  if level >= 4 then
    for node = 0 to nodes - 1 do
      Store.put_pfs t.store ~key:(key_pfs ckpt_id node) (data node)
    done;
  t.history <- (ckpt_id, level) :: t.history

let crash_nodes t nodes = Store.crash_nodes t.store nodes

(* --- recovery ---------------------------------------------------------- *)

let try_local t ckpt_id node = Store.get_local t.store ~node ~key:(key_local ckpt_id node)

let try_partner t ckpt_id node =
  match try_local t ckpt_id node with
  | Some _ as r -> r
  | None ->
      let partner = Topology.partner_of t.topology node in
      Store.get_local t.store ~node:partner ~key:(key_partner ckpt_id node)

(* Reconstruct one RS group; returns per-member payloads or None. *)
let try_rs_group t ckpt_id g =
  let members = Array.of_list (Topology.rs_group_members t.topology g) in
  let k = Array.length members in
  let locals = Array.map (fun node -> try_local t ckpt_id node) members in
  if Array.for_all Option.is_some locals then
    Some (Array.map Option.get locals)
  else begin
    let parity = parity_count t k in
    if parity < 1 then None
    else begin
      (* Find the encode width from any surviving parity metadata. *)
      let width = ref None in
      let parity_shards =
        Array.init parity (fun j ->
            let holder = parity_holder t g j in
            match Store.get_local t.store ~node:holder ~key:(key_parity ckpt_id g j) with
            | None -> None
            | Some shard -> (
                match
                  Store.get_local t.store ~node:holder ~key:(key_parity_meta ckpt_id g j)
                with
                | Some meta when Bytes.length meta = 8 ->
                    width := Some (Int64.to_int (Bytes.get_int64_le meta 0));
                    Some shard
                | _ -> None))
      in
      match !width with
      | None -> None
      | Some width -> (
          let shards =
            Array.init (k + parity) (fun i ->
                if i < k then Option.map (fun p -> frame p width) locals.(i)
                else parity_shards.(i - k))
          in
          let survivors = Array.fold_left (fun acc s -> if s = None then acc else acc + 1) 0 shards in
          if survivors < k then None
          else begin
            let codec = Rs.create ~data:k ~parity in
            match Rs.decode codec shards with
            | decoded -> Some (Array.map unframe decoded)
            | exception Invalid_argument _ -> None
          end)
    end
  end

let try_level t ckpt_id level =
  let nodes = Topology.node_count t.topology in
  let collect fetch =
    let results = Array.init nodes (fun node -> fetch node) in
    if Array.for_all Option.is_some results then Some (Array.map Option.get results)
    else None
  in
  match level with
  | 1 -> collect (fun node -> try_local t ckpt_id node)
  | 2 -> collect (fun node -> try_partner t ckpt_id node)
  | 3 ->
      let groups = Topology.rs_group_count t.topology in
      let per_group = Array.init groups (fun g -> try_rs_group t ckpt_id g) in
      if Array.for_all Option.is_some per_group then begin
        let out = Array.make nodes Bytes.empty in
        Array.iteri
          (fun g payloads ->
            let members = Topology.rs_group_members t.topology g in
            List.iteri (fun i node -> out.(node) <- (Option.get payloads).(i)) members)
          per_group;
        Some out
      end
      else None
  | 4 -> collect (fun node -> Store.get_pfs t.store ~key:(key_pfs ckpt_id node))
  | _ -> None

let recoverable_level t ~ckpt_id =
  let rec scan level =
    if level > 4 then None
    else if Option.is_some (try_level t ckpt_id level) then Some level
    else scan (level + 1)
  in
  scan 1

let recover_ckpt t ~ckpt_id =
  let rec scan level =
    if level > 4 then None
    else begin
      match try_level t ckpt_id level with
      | Some payloads ->
          Some { ckpt_id; level_used = level; data = (fun node -> payloads.(node)) }
      | None -> scan (level + 1)
    end
  in
  scan 1

let recover t =
  let rec scan = function
    | [] -> None
    | (ckpt_id, _) :: rest -> (
        match recover_ckpt t ~ckpt_id with
        | Some _ as r -> r
        | None -> scan rest)
  in
  scan t.history
