module Pfs_model = Ckpt_storage.Pfs_model
module Level = Ckpt_model.Level
module Overhead = Ckpt_model.Overhead

type t = {
  payload_bytes : float;
  procs_per_node : int;
  local_bandwidth : float;
  local_latency : float;
  link_bandwidth : float;
  link_latency : float;
  rs_data : int;
  rs_parity : int;
  gf_ops_per_second : float;
  pfs : Pfs_model.t;
}

(* Calibration targets: Table II at 128-1,024 cores -
   L1 ~ 0.87 s, L2 ~ 2.6 s, L3 ~ 3.9 s, L4 ~ 7 -> 25 s. *)
let fusion =
  { payload_bytes = 1e8;
    procs_per_node = 8;
    local_bandwidth = 1.18e8;
    local_latency = 0.02;
    link_bandwidth = 6.5e7;
    link_latency = 0.18;
    rs_data = 8;
    rs_parity = 2;
    gf_ops_per_second = 8e7;
    pfs = Pfs_model.default }

let local_write t = t.local_latency +. (t.payload_bytes /. t.local_bandwidth)

let level_cost t ~level ~procs =
  assert (procs >= 1);
  match level with
  | 1 -> local_write t
  | 2 ->
      (* Partner copy streams the payload over one link. *)
      local_write t +. t.link_latency +. (t.payload_bytes /. t.link_bandwidth)
  | 3 ->
      (* Distributed Reed-Solomon encode: each node multiply-accumulates
         its payload into [rs_parity] parity shards, then the group
         reduce-scatters the shards (payload * parity / data bytes moved
         per node). *)
      let encode =
        t.payload_bytes *. float_of_int t.rs_parity /. t.gf_ops_per_second
      in
      let exchange =
        t.link_latency
        +. (t.payload_bytes *. float_of_int t.rs_parity
            /. float_of_int t.rs_data /. t.link_bandwidth)
      in
      local_write t +. encode +. exchange
  | 4 -> Pfs_model.write_time t.pfs ~procs ~bytes_per_proc:t.payload_bytes
  | _ -> invalid_arg "Cost_model.level_cost: level out of range"

let predict_table t ~scales =
  Array.init 4 (fun idx ->
      Array.map (fun procs -> level_cost t ~level:(idx + 1) ~procs) scales)

let fit_levels ?(snap = 1e-3) t ~scales =
  let float_scales = Array.map float_of_int scales in
  Array.init 4 (fun idx ->
      let costs =
        Array.map (fun procs -> level_cost t ~level:(idx + 1) ~procs) scales
      in
      let name = [| "local"; "partner"; "rs-encoding"; "pfs" |].(idx) in
      Level.v ~name (Overhead.fit ~snap ~scales:float_scales ~costs ()))
