(** First-principles checkpoint cost model.

    The paper {e measures} the per-level overheads (Table II) and fits
    [C_i(N) = eps_i + alpha_i N].  This module predicts the same costs
    from the storage substrate instead, closing the loop between the
    mechanism-level emulation and the analytic model:

    - {b L1 local} — serialize the payload to the node-local device;
    - {b L2 partner} — L1 plus streaming a copy to the partner node;
    - {b L3 RS} — L1 plus Reed–Solomon encoding over the group (GF(256)
      multiply-accumulate per data byte per parity shard) and exchanging
      the parity shards;
    - {b L4 PFS} — a {!Ckpt_storage.Pfs_model} write wave, whose metadata
      term grows linearly with the process count.

    With the default calibration (Fusion-era hardware: ~100 MB checkpoint
    per process, ~115 MB/s local devices, GbE-class links) the predictions
    land within the jitter band of Table II, and fitting
    {!Ckpt_model.Overhead.fit} to them recovers "constant, constant,
    constant, linear" — the paper's classification. *)

type t = {
  payload_bytes : float;  (** checkpoint bytes per process *)
  procs_per_node : int;
  local_bandwidth : float;  (** node-local device, bytes/s *)
  local_latency : float;  (** per-write fixed cost, s *)
  link_bandwidth : float;  (** node-to-node link, bytes/s *)
  link_latency : float;  (** per-transfer fixed cost, s *)
  rs_data : int;  (** RS group data shards *)
  rs_parity : int;
  gf_ops_per_second : float;  (** GF(256) multiply-accumulate rate *)
  pfs : Ckpt_storage.Pfs_model.t;
}

val fusion : t
(** Calibrated to the Argonne Fusion characterization of Table II. *)

val level_cost : t -> level:int -> procs:int -> float
(** Predicted checkpoint overhead (seconds) of the given level at the
    given process count.  [level] in 1–4. *)

val predict_table : t -> scales:int array -> float array array
(** [predict_table t ~scales] is the Table II layout: per level (rows),
    the predicted cost at each scale. *)

val fit_levels : ?snap:float -> t -> scales:int array -> Ckpt_model.Level.t array
(** Fit the paper's overhead laws to the predicted costs, yielding a
    hierarchy usable by {!Ckpt_model.Optimizer} — an end-to-end
    "characterize then optimize" pipeline with no measured inputs. *)
