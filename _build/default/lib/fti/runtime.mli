(** An FTI-style multilevel checkpoint runtime (functional model).

    Implements the four checkpoint levels of the paper's toolkit over the
    emulated storage substrate:

    + {b L1 local} — each node stores its payload on its own local store;
    + {b L2 partner} — L1 plus a copy on the node's partner
      ({!Ckpt_topology.Topology.partner_of});
    + {b L3 RS-encoding} — L1 plus Reed–Solomon parity shards per node
      group; the parity of group [g] is stored on the nodes of group
      [g + 1] so that a whole-group loss keeps its parity reachable;
    + {b L4 PFS} — every payload written to the parallel file system.

    {!recover} mirrors FTI's restart protocol: scan checkpoints newest
    first and reconstruct from the cheapest level whose data survived the
    crash.  Payloads are arbitrary bytes; RS shards are length-prefixed
    and zero-padded so unequal node payloads encode correctly. *)

type t

type recovery = {
  ckpt_id : int;
  level_used : int;  (** 1–4: the level that actually served the restart *)
  data : int -> Bytes.t;  (** recovered payload per node *)
}

val create : topology:Ckpt_topology.Topology.t -> unit -> t
(** Fresh runtime with empty stores.  RS groups and parity counts come
    from the topology spec. *)

val topology : t -> Ckpt_topology.Topology.t
val store : t -> Ckpt_storage.Object_store.t

val checkpoint : t -> ckpt_id:int -> level:int -> data:(int -> Bytes.t) -> unit
(** [checkpoint t ~ckpt_id ~level ~data] saves [data node] for every node
    at [level] (1–4).  Checkpoint ids must be strictly increasing.
    @raise Invalid_argument on level out of range or non-increasing id. *)

val crash_nodes : t -> int list -> unit
(** Wipe the local stores of the given nodes (replacement nodes come back
    empty).  The PFS survives. *)

val history : t -> (int * int) list
(** [(ckpt_id, level)] pairs, newest first. *)

val recoverable_level : t -> ckpt_id:int -> int option
(** The cheapest level from which checkpoint [ckpt_id] can currently be
    reconstructed in full, if any. *)

val recover : t -> recovery option
(** Newest checkpoint reconstructible from any level; [None] when nothing
    survives (not even on the PFS). *)

val recover_ckpt : t -> ckpt_id:int -> recovery option
(** Like {!recover} for one specific checkpoint id. *)
