(** End-to-end fault-tolerant execution of a real computation.

    Ties the whole substrate together: an SPMD application (one state
    shard per node, advanced in lockstep) runs for a number of iterations
    under a multilevel checkpoint schedule; crashes are injected at chosen
    iterations; recovery goes through the {!Runtime} protocol (partner
    copies, Reed–Solomon decoding, PFS) and execution resumes from the
    recovered iteration, re-executing lost work.

    The central guarantee — tested property — is {e exactness}: a run with
    any survivable crash schedule produces bit-for-bit the same final
    state as the crash-free run, because recovery restores genuine
    serialized state, not an approximation. *)

type 'a app = {
  init : int -> 'a;  (** initial shard of a node *)
  step : iteration:int -> node:int -> 'a -> 'a;
      (** advance one iteration; must be deterministic *)
  serialize : 'a -> Bytes.t;
  deserialize : Bytes.t -> 'a;
}

type schedule = {
  interval : int;  (** checkpoint every [interval] iterations (>= 1) *)
  level_of : int -> int;
      (** level (1–4) of the k-th checkpoint, k = 1, 2, ...; FTI's classic
          cadence is cheap levels often, PFS rarely *)
}

val fti_cadence : schedule
(** Every 2 iterations; cycling L1, L1, L2, L1, L1, L3, L1, L1, L4 — a
    typical FTI interleaving. *)

type stats = {
  completed_iterations : int;
  crashes_injected : int;
  recoveries : (int * int) list;
      (** [(resumed_iteration, level_used)] per recovery, oldest first;
          a restart from the initial state reports [(0, 0)] *)
  reexecuted_iterations : int;  (** lost work that had to be redone *)
}

exception Unrecoverable of { iteration : int; crashed : int list }
(** Reserved for applications whose inputs cannot be re-read; the default
    executor never raises it — when no checkpoint survives, it restarts
    from the deterministic initial state (recovery [(0, 0)]). *)

val run_crash_free :
  topology:Ckpt_topology.Topology.t -> 'a app -> iterations:int -> 'a array
(** Reference execution without failures (no checkpoint runtime at all). *)

val run :
  topology:Ckpt_topology.Topology.t ->
  'a app ->
  iterations:int ->
  schedule:schedule ->
  crashes:(int * int list) list ->
  'a array * stats
(** [run ~topology app ~iterations ~schedule ~crashes] executes with
    [crashes] = [(iteration, nodes)] injected at the {e start} of the
    given iterations (before computing them).  Returns the final shards
    and the recovery statistics.
    @raise Unrecoverable when no checkpoint survives a crash.
    @raise Invalid_argument on out-of-range crash iterations or nodes. *)
