(** Tick-driven reference simulator.

    The paper's simulator advances in 1-second ticks (Section IV-A).  This
    engine re-implements the run semantics of {!Engine} as a literal
    tick loop — an independent discretization used to validate the fast
    event-driven engine the way the paper validates its simulator against
    real cluster runs (Fig. 4, < 4 % difference).  It is O(wall-clock
    seconds) per run, so only use it on small/medium configurations. *)

val run : ?tick:float -> seed:int -> Run_config.t -> Outcome.t
(** [run ~seed config] simulates with time quantized to [tick] seconds
    (default [1.]).  Durations are rounded up to whole ticks; failures are
    processed at the end of the tick they land in. *)
