(** Replicated simulation runs.

    The paper reports mean values over 100 runs with random failure
    arrivals per configuration (Section IV-A).  This module runs a
    configuration across seeds and aggregates the outcome portions. *)

type aggregate = {
  runs : int;
  completed_runs : int;
  wall_clock : Ckpt_numerics.Stats.summary;
  productive : float;  (** mean seconds *)
  checkpoint : float;
  restart : float;
  allocation : float;
  rollback : float;
  mean_failures : float;
  mean_efficiency : float;
  wall_clock_ci95 : float * float;
}

val run : ?runs:int -> ?base_seed:int -> Run_config.t -> aggregate
(** [run config] simulates [runs] executions (default 100) with seeds
    [base_seed + i] (default base 42) and aggregates.  Runs that hit the
    safety horizon are counted in [runs - completed_runs] and excluded
    from the means (a warning case the caller should surface). *)

val outcomes : ?runs:int -> ?base_seed:int -> Run_config.t -> Outcome.t array
(** The raw per-run outcomes, for custom statistics. *)

val pp : Format.formatter -> aggregate -> unit
