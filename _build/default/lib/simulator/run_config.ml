module Speedup = Ckpt_model.Speedup
module Level = Ckpt_model.Level
module Optimizer = Ckpt_model.Optimizer
module Failure_spec = Ckpt_failures.Failure_spec

type ckpt_failure_semantics = Abort_ckpt | Atomic_ckpt
type recovery_failure_semantics = Restart_recovery | Ignore_during_recovery

type semantics = {
  jitter_ratio : float;
  on_ckpt_failure : ckpt_failure_semantics;
  on_recovery_failure : recovery_failure_semantics;
  subsume_coincident : bool;
}

let default_semantics =
  { jitter_ratio = 0.3;
    on_ckpt_failure = Abort_ckpt;
    on_recovery_failure = Restart_recovery;
    subsume_coincident = false }

let paper_semantics = { default_semantics with on_ckpt_failure = Atomic_ckpt }

type t = {
  te : float;
  speedup : Speedup.t;
  levels : Level.t array;
  alloc : float;
  spec : Failure_spec.t;
  xs : float array;
  n : float;
  semantics : semantics;
  failure_laws : Ckpt_failures.Arrivals.law array option;
  failure_trace : (float * int) list option;
  max_wall_clock : float;
}

let v ?(semantics = default_semantics) ?failure_laws ?failure_trace
    ?(max_wall_clock = 1e10) ~te ~speedup ~levels ~alloc ~spec ~xs ~n () =
  if Array.length levels = 0 then invalid_arg "Run_config: no levels";
  if Array.length xs <> Array.length levels then
    invalid_arg "Run_config: xs size differs from level count";
  if Failure_spec.levels spec <> Array.length levels then
    invalid_arg "Run_config: failure spec size differs from level count";
  Array.iter (fun x -> if x < 1. then invalid_arg "Run_config: interval count < 1") xs;
  if te <= 0. then invalid_arg "Run_config: non-positive workload";
  if n < 1. then invalid_arg "Run_config: scale < 1";
  if alloc < 0. then invalid_arg "Run_config: negative allocation period";
  if semantics.jitter_ratio < 0. || semantics.jitter_ratio >= 1. then
    invalid_arg "Run_config: jitter ratio out of [0, 1)";
  (match failure_laws with
   | Some laws when Array.length laws <> Array.length levels ->
       invalid_arg "Run_config: one failure law per level required"
   | _ -> ());
  (match failure_trace with
   | None -> ()
   | Some events ->
       let prev = ref neg_infinity in
       List.iter
         (fun (at, level) ->
           if at < !prev then invalid_arg "Run_config: failure trace not sorted";
           if level < 1 || level > Array.length levels then
             invalid_arg "Run_config: failure trace level out of range";
           prev := at)
         events);
  { te; speedup; levels; alloc; spec; xs; n; semantics; failure_laws; failure_trace;
    max_wall_clock }

let of_plan ?semantics ?failure_laws ?failure_trace ?max_wall_clock
    ~(problem : Optimizer.problem) ~(plan : Optimizer.plan) () =
  v ?semantics ?failure_laws ?failure_trace ?max_wall_clock ~te:problem.Optimizer.te
    ~speedup:problem.Optimizer.speedup
    ~levels:problem.Optimizer.levels ~alloc:problem.Optimizer.alloc
    ~spec:problem.Optimizer.spec ~xs:plan.Optimizer.xs ~n:plan.Optimizer.n ()

let productive_target t = Speedup.productive_time t.speedup ~te:t.te ~n:t.n

let nested_xs xs =
  let n = Array.length xs in
  assert (n > 0);
  let out = Array.make n 1. in
  (* Build from the most expensive level down: each cheaper level's count
     is the nearest positive integer multiple of the level above it. *)
  out.(n - 1) <- Float.max 1. (Float.round xs.(n - 1));
  for i = n - 2 downto 0 do
    let multiple = Float.max 1. (Float.round (xs.(i) /. out.(i + 1))) in
    out.(i) <- multiple *. out.(i + 1)
  done;
  out
