(** Configuration of one simulated checkpointed execution.

    Mirrors the paper's exascale simulation setup (Section IV-A): a
    workload of [te] single-core seconds runs on [n] cores under a
    multilevel checkpoint plan [xs]; failures arrive as per-level Poisson
    processes scaled to [n]; checkpoint/restart costs are jittered by up to
    30 %.  Semantics toggles capture behaviours the paper leaves implicit,
    so experiments can bracket them. *)

type ckpt_failure_semantics =
  | Abort_ckpt  (** a failure mid-write destroys the in-progress checkpoint *)
  | Atomic_ckpt  (** writes are atomic; the failure is handled at write end *)

type recovery_failure_semantics =
  | Restart_recovery  (** a failure mid-recovery restarts the recovery *)
  | Ignore_during_recovery  (** failures during recovery are suppressed *)

type semantics = {
  jitter_ratio : float;  (** relative +- jitter on C/R costs (paper: 0.3) *)
  on_ckpt_failure : ckpt_failure_semantics;
  on_recovery_failure : recovery_failure_semantics;
  subsume_coincident : bool;
      (** when several levels' marks fall on the same productive position,
          write only the highest level (FTI's behaviour with nested
          cadences) instead of all of them *)
}

val default_semantics : semantics
(** 30 % jitter, aborting checkpoints, restarting recoveries — the
    physically conservative semantics. *)

val paper_semantics : semantics
(** 30 % jitter, {e atomic} checkpoint writes, restarting recoveries.
    Replicating the paper's reported numbers (notably the 7-26 %
    ML(ori-scale) gap of Fig. 5) requires checkpoint writes to survive
    concurrent failures; the experiments use this variant and the
    ablation study quantifies the difference. *)

type t = {
  te : float;  (** single-core productive time, seconds *)
  speedup : Ckpt_model.Speedup.t;
  levels : Ckpt_model.Level.t array;
  alloc : float;  (** allocation period charged on every failure *)
  spec : Ckpt_failures.Failure_spec.t;  (** one rate per level *)
  xs : float array;  (** checkpoint interval counts per level (>= 1) *)
  n : float;  (** execution scale (cores) *)
  semantics : semantics;
  failure_laws : Ckpt_failures.Arrivals.law array option;
      (** per-level inter-arrival laws; [None] (default) = exponential
          everywhere, matching the paper *)
  failure_trace : (float * int) list option;
      (** replay these [(wall_clock_time, level)] failures instead of
          sampling — e.g. an observed failure log.  Must be sorted by
          time with levels in range; runs see no failures beyond the
          trace's end. *)
  max_wall_clock : float;
      (** safety horizon; a run still incomplete here is reported with
          [completed = false] (default 1e10 s) *)
}

val v :
  ?semantics:semantics ->
  ?failure_laws:Ckpt_failures.Arrivals.law array ->
  ?failure_trace:(float * int) list ->
  ?max_wall_clock:float ->
  te:float ->
  speedup:Ckpt_model.Speedup.t ->
  levels:Ckpt_model.Level.t array ->
  alloc:float ->
  spec:Ckpt_failures.Failure_spec.t ->
  xs:float array ->
  n:float ->
  unit ->
  t
(** Validated constructor.
    @raise Invalid_argument on inconsistent sizes or out-of-range values. *)

val of_plan :
  ?semantics:semantics ->
  ?failure_laws:Ckpt_failures.Arrivals.law array ->
  ?failure_trace:(float * int) list ->
  ?max_wall_clock:float ->
  problem:Ckpt_model.Optimizer.problem ->
  plan:Ckpt_model.Optimizer.plan ->
  unit ->
  t
(** Simulate the execution an {!Ckpt_model.Optimizer.plan} prescribes for
    its problem. *)

val productive_target : t -> float
(** [te / g(n)] — the parallel productive seconds a run must complete. *)

val nested_xs : float array -> float array
(** Align interval counts hierarchically, FTI-style: each level's count
    becomes an integer multiple of the next (more expensive) level's, so
    higher-level marks coincide with lower-level ones.  Input counts are
    per level, cheapest first; outputs are >= 1 and within rounding of the
    inputs. *)
