lib/simulator/replication.ml: Array Ckpt_numerics Engine Format List Outcome Run_config
