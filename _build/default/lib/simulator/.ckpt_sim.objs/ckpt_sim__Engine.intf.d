lib/simulator/engine.mli: Ckpt_simkernel Outcome Run_config
