lib/simulator/run_config.ml: Array Ckpt_failures Ckpt_model Float List
