lib/simulator/outcome.ml: Array Format String
