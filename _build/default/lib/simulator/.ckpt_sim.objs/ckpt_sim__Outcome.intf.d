lib/simulator/outcome.mli: Format
