lib/simulator/run_config.mli: Ckpt_failures Ckpt_model
