lib/simulator/engine.ml: Array Ckpt_failures Ckpt_model Ckpt_numerics Ckpt_simkernel Float Hashtbl Outcome Printf Run_config
