lib/simulator/tick_engine.mli: Outcome Run_config
