lib/simulator/tick_engine.ml: Array Ckpt_failures Ckpt_model Ckpt_numerics Float Hashtbl Int List Outcome Run_config
