lib/simulator/replication.mli: Ckpt_numerics Format Outcome Run_config
