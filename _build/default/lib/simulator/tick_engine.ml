module Rng = Ckpt_numerics.Rng
module Dist = Ckpt_numerics.Dist
module Arrivals = Ckpt_failures.Arrivals
module Level = Ckpt_model.Level
module Overhead = Ckpt_model.Overhead

(* The machine's activity during one tick. *)
type phase =
  | Computing
  | Writing of { level : int; mark : int; remaining : float; elapsed : float }
  | Allocating of { level : int; remaining : float }
  | Recovering of { level : int; remaining : float }

let run ?(tick = 1.) ~seed config =
  assert (tick > 0.);
  let rng = Rng.of_int seed in
  let next_failure_after =
    match config.Run_config.failure_trace with
    | Some events ->
        let remaining = ref events in
        fun now ->
          let rec pick () =
            match !remaining with
            | [] -> None
            | (at, level) :: rest ->
                if at <= now then begin
                  remaining := rest;
                  pick ()
                end
                else begin
                  remaining := rest;
                  Some { Arrivals.at; level }
                end
          in
          pick ()
    | None ->
        let arrivals =
          Arrivals.create ?laws:config.Run_config.failure_laws ~rng:(Rng.split rng)
            ~spec:config.Run_config.spec ~scale:config.Run_config.n ()
        in
        fun now -> Arrivals.next_after arrivals now
  in
  let target = Run_config.productive_target config in
  let nlevels = Array.length config.Run_config.levels in
  let n = config.Run_config.n in
  let semantics = config.Run_config.semantics in
  let jittered v =
    if semantics.Run_config.jitter_ratio = 0. then v
    else Dist.jittered rng ~ratio:semantics.Run_config.jitter_ratio v
  in
  let ckpt_cost lvl = Overhead.cost config.Run_config.levels.(lvl - 1).Level.ckpt n in
  let restart_cost lvl = Overhead.cost config.Run_config.levels.(lvl - 1).Level.restart n in
  let tau = Array.map (fun x -> target /. x) config.Run_config.xs in
  let last_pos = Array.make nlevels 0. in
  let next_k = Array.make nlevels 1 in
  let completed_marks = Array.init nlevels (fun _ -> Hashtbl.create 64) in
  let t = ref 0. and p = ref 0. and hw = ref 0. in
  let productive = ref 0. and checkpoint = ref 0. and restart = ref 0. in
  let allocation = ref 0. and rollback = ref 0. in
  let failures = Array.make nlevels 0 in
  let recoveries = ref 0 in
  let ckpts_written = Array.make nlevels 0 in
  let ckpts_redone = Array.make nlevels 0 in
  let ckpts_aborted = Array.make nlevels 0 in
  let next_failure = ref (next_failure_after (-1.)) in
  let eps = 1e-9 *. target in
  let phase = ref Computing in
  let due_mark () =
    (* The lowest due level (or, under subsumption, the highest due level
       with the cheaper due marks skipped). *)
    let due = ref [] in
    for lvl = nlevels downto 1 do
      let pos = float_of_int next_k.(lvl - 1) *. tau.(lvl - 1) in
      if pos <= !p +. eps && pos < target -. eps then due := lvl :: !due
    done;
    match !due with
    | [] -> None
    | lowest :: _ when not semantics.Run_config.subsume_coincident -> Some lowest
    | due_levels ->
        let highest = List.fold_left Int.max 1 due_levels in
        List.iter
          (fun l -> if l <> highest then next_k.(l - 1) <- next_k.(l - 1) + 1)
          due_levels;
        Some highest
  in
  let reset_marks q =
    for lvl = 1 to nlevels do
      next_k.(lvl - 1) <- int_of_float ((q +. eps) /. tau.(lvl - 1)) + 1
    done
  in
  let start_recovery f =
    incr recoveries;
    phase :=
      if config.Run_config.alloc > 0. then
        Allocating { level = f; remaining = config.Run_config.alloc }
      else Recovering { level = f; remaining = jittered (restart_cost f) }
  in
  let handle_failure f =
    failures.(f - 1) <- failures.(f - 1) + 1;
    let q = ref 0. in
    for j = f to nlevels do
      q := Float.max !q last_pos.(j - 1)
    done;
    for j = 1 to f - 1 do
      if last_pos.(j - 1) > !q then last_pos.(j - 1) <- !q
    done;
    p := !q;
    reset_marks !q;
    start_recovery f
  in
  (* Returns the failure level if one landed inside the current tick and
     must be acted upon given the phase semantics. *)
  let failure_this_tick () =
    match !next_failure with
    | Some ev when ev.Arrivals.at < !t +. tick ->
        next_failure := next_failure_after ev.Arrivals.at;
        Some ev.Arrivals.level
    | _ -> None
  in
  while
    !p < target -. eps && !t < config.Run_config.max_wall_clock
  do
    (* Instantaneous transition: when a checkpoint mark is due, the next
       tick belongs to the write, not to computation. *)
    (match !phase with
     | Computing -> (
         match due_mark () with
         | Some lvl ->
             phase :=
               Writing { level = lvl; mark = next_k.(lvl - 1);
                         remaining = jittered (ckpt_cost lvl); elapsed = 0. }
         | None -> ())
     | Writing _ | Allocating _ | Recovering _ -> ());
    let failed = failure_this_tick () in
    (match !phase with
     | Computing -> (
         (* One tick of computation. *)
         let first = Float.max 0. (Float.min tick (!p +. tick -. Float.max !p !hw)) in
         productive := !productive +. first;
         rollback := !rollback +. (tick -. first);
         p := !p +. tick;
         hw := Float.max !hw !p;
         match failed with Some f -> handle_failure f | None -> ())
     | Writing w -> (
         match (failed, semantics.Run_config.on_ckpt_failure) with
         | Some f, Run_config.Abort_ckpt ->
             rollback := !rollback +. w.elapsed +. tick;
             ckpts_aborted.(w.level - 1) <- ckpts_aborted.(w.level - 1) + 1;
             handle_failure f
         | maybe_failure, _ ->
             let remaining = w.remaining -. tick in
             if remaining > 0. then
               phase := Writing { w with remaining; elapsed = w.elapsed +. tick }
             else begin
               let total = w.elapsed +. tick in
               let marks = completed_marks.(w.level - 1) in
               if Hashtbl.mem marks w.mark then begin
                 rollback := !rollback +. total;
                 ckpts_redone.(w.level - 1) <- ckpts_redone.(w.level - 1) + 1
               end
               else begin
                 checkpoint := !checkpoint +. total;
                 ckpts_written.(w.level - 1) <- ckpts_written.(w.level - 1) + 1;
                 Hashtbl.replace marks w.mark ()
               end;
               last_pos.(w.level - 1) <- !p;
               next_k.(w.level - 1) <- w.mark + 1;
               phase := Computing;
               match maybe_failure with
               | Some f -> handle_failure f  (* atomic write, then the failure *)
               | None -> ()
             end)
     | Allocating a -> (
         allocation := !allocation +. tick;
         match (failed, semantics.Run_config.on_recovery_failure) with
         | Some f, Run_config.Restart_recovery -> handle_failure f
         | _ ->
             let remaining = a.remaining -. tick in
             if remaining > 0. then phase := Allocating { a with remaining }
             else
               phase :=
                 Recovering { level = a.level; remaining = jittered (restart_cost a.level) })
     | Recovering r -> (
         restart := !restart +. tick;
         match (failed, semantics.Run_config.on_recovery_failure) with
         | Some f, Run_config.Restart_recovery -> handle_failure f
         | _ ->
             let remaining = r.remaining -. tick in
             if remaining > 0. then phase := Recovering { r with remaining }
             else phase := Computing));
    t := !t +. tick
  done;
  { Outcome.completed = !p >= target -. eps;
    wall_clock = !t;
    productive = !productive;
    checkpoint = !checkpoint;
    restart = !restart;
    allocation = !allocation;
    rollback = !rollback;
    failures;
    recoveries = !recoveries;
    ckpts_written;
    ckpts_redone;
    ckpts_aborted }
