(** Result of one simulated run, decomposed into the paper's four stacked
    time portions (Figs. 5/6): productive time, checkpoint overhead,
    restart overhead (split here into recovery reads and allocation), and
    rollback loss (re-executed work, re-written checkpoints and aborted
    writes). *)

type t = {
  completed : bool;  (** [false] when the safety horizon was hit *)
  wall_clock : float;
  productive : float;  (** first-time productive seconds *)
  checkpoint : float;  (** first-time checkpoint writes *)
  restart : float;  (** recovery reads *)
  allocation : float;  (** node re-allocation periods *)
  rollback : float;  (** re-executed work + re-written/aborted checkpoints *)
  failures : int array;  (** failures per level *)
  recoveries : int;  (** recoveries begun (>= total failures under
                         restart-recovery semantics) *)
  ckpts_written : int array;  (** first-time completed checkpoints per level *)
  ckpts_redone : int array;  (** re-taken after rollback, per level *)
  ckpts_aborted : int array;  (** destroyed mid-write, per level *)
}

val total_failures : t -> int

val portions_sum : t -> float
(** [productive + checkpoint + restart + allocation + rollback]; equals
    [wall_clock] up to float noise (tested invariant). *)

val efficiency : t -> te:float -> n:float -> float
(** Wall-clock-based processor utilization: [(te / wall_clock) / n]
    (paper Section IV-A). *)

val pp : Format.formatter -> t -> unit
