module Stats = Ckpt_numerics.Stats

type aggregate = {
  runs : int;
  completed_runs : int;
  wall_clock : Stats.summary;
  productive : float;
  checkpoint : float;
  restart : float;
  allocation : float;
  rollback : float;
  mean_failures : float;
  mean_efficiency : float;
  wall_clock_ci95 : float * float;
}

let outcomes ?(runs = 100) ?(base_seed = 42) config =
  assert (runs > 0);
  Array.init runs (fun i -> Engine.run ~seed:(base_seed + i) config)

let run ?runs ?base_seed config =
  let all = outcomes ?runs ?base_seed config in
  let completed = Array.of_list (List.filter (fun o -> o.Outcome.completed) (Array.to_list all)) in
  let pick f =
    if Array.length completed = 0 then [| 0. |] else Array.map f completed
  in
  let walls = pick (fun o -> o.Outcome.wall_clock) in
  let mean f = Stats.mean (pick f) in
  { runs = Array.length all;
    completed_runs = Array.length completed;
    wall_clock = Stats.summarize walls;
    productive = mean (fun o -> o.Outcome.productive);
    checkpoint = mean (fun o -> o.Outcome.checkpoint);
    restart = mean (fun o -> o.Outcome.restart);
    allocation = mean (fun o -> o.Outcome.allocation);
    rollback = mean (fun o -> o.Outcome.rollback);
    mean_failures = mean (fun o -> float_of_int (Outcome.total_failures o));
    mean_efficiency =
      mean (fun o ->
          Outcome.efficiency o ~te:config.Run_config.te ~n:config.Run_config.n);
    wall_clock_ci95 = Stats.confidence95 walls }

let pp ppf a =
  Format.fprintf ppf
    "@[<v>%d/%d runs completed@ wall mean=%.4g s std=%.3g@ portions: prod=%.4g \
     ckpt=%.4g restart=%.4g alloc=%.4g rollback=%.4g@ failures=%.1f eff=%.4f@]"
    a.completed_runs a.runs a.wall_clock.Stats.mean a.wall_clock.Stats.std a.productive
    a.checkpoint a.restart a.allocation a.rollback a.mean_failures a.mean_efficiency
