type t = {
  completed : bool;
  wall_clock : float;
  productive : float;
  checkpoint : float;
  restart : float;
  allocation : float;
  rollback : float;
  failures : int array;
  recoveries : int;
  ckpts_written : int array;
  ckpts_redone : int array;
  ckpts_aborted : int array;
}

let total_failures t = Array.fold_left ( + ) 0 t.failures

let portions_sum t =
  t.productive +. t.checkpoint +. t.restart +. t.allocation +. t.rollback

let efficiency t ~te ~n =
  assert (te > 0. && n > 0.);
  if t.wall_clock <= 0. then 0. else te /. t.wall_clock /. n

let pp ppf t =
  Format.fprintf ppf
    "@[<v>wall=%.4g s (completed=%b)@ productive=%.4g ckpt=%.4g restart=%.4g \
     alloc=%.4g rollback=%.4g@ failures=[%s] recoveries=%d@ \
     ckpts written=[%s] redone=[%s] aborted=[%s]@]"
    t.wall_clock t.completed t.productive t.checkpoint t.restart t.allocation t.rollback
    (String.concat ";" (Array.to_list (Array.map string_of_int t.failures)))
    t.recoveries
    (String.concat ";" (Array.to_list (Array.map string_of_int t.ckpts_written)))
    (String.concat ";" (Array.to_list (Array.map string_of_int t.ckpts_redone)))
    (String.concat ";" (Array.to_list (Array.map string_of_int t.ckpts_aborted)))
