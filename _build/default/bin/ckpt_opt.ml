(* Compute an optimized multilevel checkpoint plan from the command line.

   Example:
     ckpt_opt --te-days 3e6 --rates 16-12-8-4 --kappa 0.46 --n-star 1e6
     ckpt_opt --te-days 2e6 --rates 8-6-4-2 --costs 50,100,200,2000 --solution sl-opt *)

open Cmdliner
open Ckpt_model

let build_levels costs pfs_alpha =
  match costs with
  | [] ->
      (* Default: the FTI characterization on the Fusion cluster. *)
      Level.fti_fusion
  | costs ->
      let n = List.length costs in
      Array.of_list
        (List.mapi
           (fun i c ->
             if i = n - 1 && pfs_alpha > 0. then
               Level.v ~name:"pfs" (Overhead.linear ~eps:c ~alpha:pfs_alpha)
             else Level.v ~name:(Printf.sprintf "level%d" (i + 1)) (Overhead.constant c))
           costs)

let write_bundle path problem plan =
  let json = Codec.bundle_to_json ~problem ~plan in
  let oc = open_out path in
  output_string oc (Ckpt_json.Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc

let run te_days rates kappa n_star alloc costs pfs_alpha solution delta output =
  match
    let spec =
      try Ok (Ckpt_failures.Failure_spec.of_string ~baseline_scale:n_star rates)
      with Invalid_argument m -> Error m
    in
    Result.bind spec (fun spec ->
        let levels = build_levels costs pfs_alpha in
        if Ckpt_failures.Failure_spec.levels spec <> Array.length levels then
          Error
            (Printf.sprintf "%d failure rates for %d levels"
               (Ckpt_failures.Failure_spec.levels spec)
               (Array.length levels))
        else begin
          let problem =
            { Optimizer.te = te_days *. 86400.;
              speedup = Speedup.quadratic ~kappa ~n_star;
              levels; alloc; spec }
          in
          let simulation_problem, plan =
            match solution with
            | "ml-opt" -> (problem, Optimizer.ml_opt_scale ~delta problem)
            | "ml-ori" -> (problem, Optimizer.ml_ori_scale ~delta problem)
            | "sl-opt" ->
                (Optimizer.single_level_problem problem, Optimizer.sl_opt_scale ~delta problem)
            | "sl-ori" ->
                (Optimizer.single_level_problem problem, Optimizer.sl_ori_scale problem)
            | s -> invalid_arg ("unknown solution " ^ s)
          in
          Ok (simulation_problem, plan)
        end)
  with
  | Ok (simulation_problem, plan) ->
      Format.printf "%a@." Optimizer.pp_plan plan;
      Option.iter
        (fun path ->
          write_bundle path simulation_problem plan;
          Format.printf "bundle written to %s@." path)
        output;
      Ok ()
  | Error m -> Error m
  | exception Invalid_argument m -> Error m

let te_days =
  Arg.(value & opt float 3e6 & info [ "te-days" ] ~doc:"Workload in core-days.")

let rates =
  Arg.(value & opt string "16-12-8-4"
       & info [ "rates" ] ~doc:"Per-level failures/day at the baseline scale, dash-separated.")

let kappa = Arg.(value & opt float 0.46 & info [ "kappa" ] ~doc:"Speedup slope at the origin.")
let n_star = Arg.(value & opt float 1e6 & info [ "n-star" ] ~doc:"Ideal (peak) scale in cores.")
let alloc = Arg.(value & opt float 60. & info [ "alloc" ] ~doc:"Allocation period A in seconds.")

let costs =
  Arg.(value & opt (list float) []
       & info [ "costs" ] ~doc:"Constant per-level checkpoint costs (overrides FTI defaults).")

let pfs_alpha =
  Arg.(value & opt float 0.
       & info [ "pfs-alpha" ] ~doc:"Linear scale coefficient of the last level's cost.")

let solution =
  Arg.(value & opt string "ml-opt"
       & info [ "solution" ] ~doc:"One of ml-opt, ml-ori, sl-opt, sl-ori.")

let delta =
  Arg.(value & opt float 1e-9 & info [ "delta" ] ~doc:"Outer-loop convergence threshold.")

let output =
  Arg.(value & opt (some string) None
       & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Write the problem+plan bundle as JSON (for ckpt-simulate --plan).")

let cmd =
  let doc = "Optimize multilevel checkpoint intervals and execution scale (SC'14 model)" in
  let term =
    Term.(const run $ te_days $ rates $ kappa $ n_star $ alloc $ costs $ pfs_alpha
          $ solution $ delta $ output)
  in
  Cmd.v (Cmd.info "ckpt-opt" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
