(* CLI runner for the paper-reproduction experiments.

   Usage:
     experiments_main            # run everything
     experiments_main fig3 table4
     experiments_main --list *)

let list_experiments () =
  List.iter
    (fun e -> Printf.printf "%-14s %s\n" e.Ckpt_experiments.Registry.id e.Ckpt_experiments.Registry.title)
    Ckpt_experiments.Registry.all

let run_ids ids =
  let ppf = Format.std_formatter in
  let run_one id =
    match Ckpt_experiments.Registry.find id with
    | Some e ->
        e.Ckpt_experiments.Registry.run ppf;
        Format.pp_print_flush ppf ();
        Ok ()
    | None -> Error (Printf.sprintf "unknown experiment %S (try --list)" id)
  in
  let rec go = function
    | [] -> Ok ()
    | id :: rest -> ( match run_one id with Ok () -> go rest | Error _ as e -> e)
  in
  go ids

open Cmdliner

let ids_arg =
  let doc = "Experiments to run (default: all).  See --list for ids." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_arg =
  let doc = "List available experiments and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let csv_arg =
  let doc =
    "Write CSV artifacts for the figures into $(docv) (created if missing) \
     instead of running the textual experiments."
  in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let csv_runs_arg =
  let doc = "Simulation runs per cell for the CSV Fig. 5/6 artifacts (0 skips them)." in
  Arg.(value & opt int 20 & info [ "csv-runs" ] ~doc)

let report_arg =
  let doc = "Write a generated Markdown reproduction report to $(docv) and exit." in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let write_csv dir runs =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let written = Ckpt_experiments.Csv_export.write_analytic ~dir in
  let written =
    if runs > 0 then written @ Ckpt_experiments.Csv_export.write_simulated ~runs ~dir ()
    else written
  in
  List.iter (Printf.printf "wrote %s\n") written;
  Ok ()

let main list csv csv_runs report ids =
  if list then begin
    list_experiments ();
    Ok ()
  end
  else begin
    match report with
    | Some path ->
        let oc = open_out path in
        let ppf = Format.formatter_of_out_channel oc in
        Ckpt_experiments.Report.run ppf;
        Format.pp_print_flush ppf ();
        close_out oc;
        Printf.printf "report written to %s\n" path;
        Ok ()
    | None -> (
        match csv with
        | Some dir -> write_csv dir csv_runs
        | None ->
            let ids = if ids = [] then Ckpt_experiments.Registry.ids () else ids in
            run_ids ids)
  end

let cmd =
  let doc = "Regenerate the tables and figures of the multilevel checkpoint paper" in
  let term =
    Term.(const main $ list_arg $ csv_arg $ csv_runs_arg $ report_arg $ ids_arg)
  in
  Cmd.v (Cmd.info "ckpt-experiments" ~doc) Term.(term_result' term)

let () = exit (Cmd.eval cmd)
